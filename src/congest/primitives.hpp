// Reusable distributed building blocks on the CONGEST kernel:
//
//   * BfsTreeProtocol       -- breadth-first tree construction, O(D) rounds
//   * BroadcastProtocol     -- root-to-all dissemination over a BFS tree
//   * ConvergecastSum       -- aggregate a per-node word up the tree
//   * PipelinedVectorUpcast -- aggregate a K-vector up the tree, O(D + K)
//   * TokenWalkProtocol     -- many simultaneous random-walk tokens with
//                              emergent congestion (Phase 1 of Algorithm 1)
//
// These correspond to the standard CONGEST toolbox the paper builds on
// ("constructing a BFS tree clearly takes O(D) rounds", "the standard upcast
// technique", Appendix A/C).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace drw::congest {

/// A rooted BFS tree: output of BfsTreeProtocol, input to the cast protocols.
struct BfsTree {
  NodeId root = kInvalidNode;
  std::vector<NodeId> parent;                // parent[root] == root
  std::vector<std::vector<NodeId>> children; // per node
  std::vector<std::uint32_t> depth;          // hops from root
  std::uint32_t height = 0;                  // max depth
};

/// Floods level messages from the root; each node adopts the smallest-ID
/// first-round sender as parent and notifies it. Quiesces in O(D) rounds.
class BfsTreeProtocol final : public Protocol {
 public:
  BfsTreeProtocol(const Graph& g, NodeId root);
  void on_round(Context& ctx) override;

  /// Valid after the run completes; throws if some node was never reached.
  BfsTree take_tree();

 private:
  enum MsgType : std::uint16_t { kLevel = 1, kJoin = 2 };
  NodeId root_;
  BfsTree tree_;
  std::vector<std::uint8_t> joined_;
};

/// Sends one payload message from the root to every node along tree edges.
/// Each node's payload is observed via the `on_receive` callback (called with
/// the receiving node's ID); O(height) rounds.
///
/// SHARD SAFETY: `on_receive` runs inside on_round and may execute on any
/// executor thread -- it must only write state indexed by the receiving
/// node (see the Protocol contract in network.hpp). All in-repo callbacks
/// comply.
class BroadcastProtocol final : public Protocol {
 public:
  BroadcastProtocol(const BfsTree& tree, Message payload,
                    std::function<void(NodeId, const Message&)> on_receive);
  void on_round(Context& ctx) override;

 private:
  enum MsgType : std::uint16_t { kDown = 1 };
  const BfsTree* tree_;
  Message payload_;
  std::function<void(NodeId, const Message&)> on_receive_;
};

/// Sums a per-node 64-bit value up the tree; result available at the root
/// after O(height) rounds via `root_sum()`.
class ConvergecastSum final : public Protocol {
 public:
  ConvergecastSum(const BfsTree& tree, std::vector<std::uint64_t> values);
  void on_round(Context& ctx) override;
  std::uint64_t root_sum() const { return acc_[tree_->root]; }

 private:
  enum MsgType : std::uint16_t { kUp = 1 };
  void maybe_forward(Context& ctx);
  const BfsTree* tree_;
  std::vector<std::uint64_t> acc_;
  std::vector<std::uint32_t> pending_children_;
  std::vector<std::uint8_t> sent_;
};

/// Element-wise sums per-node vectors of length K up the tree, pipelined one
/// entry per tree edge per round: O(height + K) rounds, messages of
/// (index, value) pairs. Used by the mixing-time estimator's bucket upcast
/// (Appendix C.3's "standard upcast technique").
class PipelinedVectorUpcast final : public Protocol {
 public:
  PipelinedVectorUpcast(const BfsTree& tree,
                        std::vector<std::vector<std::uint64_t>> values);
  void on_round(Context& ctx) override;
  const std::vector<std::uint64_t>& root_vector() const {
    return acc_[tree_->root];
  }

 private:
  enum MsgType : std::uint16_t { kEntry = 1 };
  void pump(Context& ctx);
  const BfsTree* tree_;
  std::size_t k_ = 0;
  std::vector<std::vector<std::uint64_t>> acc_;
  std::vector<std::vector<std::uint32_t>> entry_pending_;  // children missing
  std::vector<std::uint32_t> next_send_;
};

/// Streams arbitrary per-node record lists (3 words each) to the tree root,
/// one record per tree edge per round: O(height + total records) rounds.
/// Used to deliver walk-sample records to the mixing-time estimator's source
/// ("the source can obtain ... in O~(n^{1/2} poly(1/eps) + D) rounds").
class PipelinedListUpcast final : public Protocol {
 public:
  using Record = std::array<std::uint64_t, 3>;

  PipelinedListUpcast(const BfsTree& tree,
                      std::vector<std::vector<Record>> records);
  void on_round(Context& ctx) override;

  /// All records collected at the root (order unspecified).
  const std::vector<Record>& root_records() const {
    return queue_[tree_->root];
  }

 private:
  enum MsgType : std::uint16_t { kRecord = 5 };
  void pump(Context& ctx);
  const BfsTree* tree_;
  std::vector<std::vector<Record>> queue_;
  std::vector<std::size_t> next_send_;
};

/// A short-walk token in flight: walk from `source`, `remaining` hops to go,
/// `total_len` the walk's full length (carried so the destination learns it).
struct WalkToken {
  NodeId source = kInvalidNode;
  std::uint32_t remaining = 0;
  std::uint32_t total_len = 0;
};

/// A walk endpoint stored at its destination node.
struct StoredToken {
  NodeId source = kInvalidNode;
  std::uint32_t length = 0;
};

/// Moves every initial token along an independent random walk, one hop per
/// delivered message, decrementing `remaining`; a token with remaining == 0
/// is stored at the current node. One message carries one token, so edge
/// congestion is real and the protocol's round count exhibits the
/// O(lambda * eta * log n) behaviour of Lemma 2.1.
class TokenWalkProtocol final : public Protocol {
 public:
  TokenWalkProtocol(const Graph& g,
                    std::vector<std::vector<WalkToken>> initial_tokens);
  void on_round(Context& ctx) override;

  /// Tokens stored at each node after quiescence (destination-side record:
  /// "only the destination of each of these walks is aware of its source").
  const std::vector<std::vector<StoredToken>>& stored() const {
    return stored_;
  }
  std::vector<std::vector<StoredToken>> take_stored() {
    return std::move(stored_);
  }

 private:
  enum MsgType : std::uint16_t { kToken = 1 };
  void route(Context& ctx, const WalkToken& token);
  std::vector<std::vector<WalkToken>> initial_;
  std::vector<std::vector<StoredToken>> stored_;
};

/// Driver helper: builds a BFS tree rooted at `root`, accumulating rounds
/// into `stats`.
BfsTree build_bfs_tree(Network& net, NodeId root, RunStats& stats);

}  // namespace drw::congest
