#include "congest/primitives.hpp"

#include <algorithm>
#include <stdexcept>

namespace drw::congest {

// ---------------------------------------------------------------- BFS tree

BfsTreeProtocol::BfsTreeProtocol(const Graph& g, NodeId root) : root_(root) {
  const std::size_t n = g.node_count();
  tree_.root = root;
  tree_.parent.assign(n, kInvalidNode);
  tree_.children.assign(n, {});
  tree_.depth.assign(n, 0);
  joined_.assign(n, 0);
}

void BfsTreeProtocol::on_round(Context& ctx) {
  const NodeId v = ctx.self();
  if (ctx.round() == 0) {
    if (v != root_) return;
    joined_[v] = 1;
    tree_.parent[v] = v;
    Message level{kLevel, {0, 0, 0, 0}};
    for (std::uint32_t slot = 0; slot < ctx.degree(); ++slot) {
      ctx.send(slot, level);
    }
    return;
  }
  for (const Delivery& d : ctx.inbox()) {
    switch (d.msg.type) {
      case kLevel: {
        if (joined_[v]) break;
        // First LEVEL this round: all same-round senders are at equal depth;
        // adopt the smallest ID for determinism.
        NodeId best = d.from;
        for (const Delivery& other : ctx.inbox()) {
          if (other.msg.type == kLevel && other.from < best) {
            best = other.from;
          }
        }
        joined_[v] = 1;
        tree_.parent[v] = best;
        // height is derived in take_tree(): a running max here would be a
        // cross-node write, which the parallel executor forbids.
        tree_.depth[v] = static_cast<std::uint32_t>(d.msg.f[0]) + 1;
        ctx.send_to(best, Message{kJoin, {0, 0, 0, 0}});
        Message level{kLevel, {tree_.depth[v], 0, 0, 0}};
        for (std::uint32_t slot = 0; slot < ctx.degree(); ++slot) {
          if (ctx.neighbor(slot) != best) ctx.send(slot, level);
        }
        break;
      }
      case kJoin:
        tree_.children[v].push_back(d.from);
        break;
      default:
        throw std::logic_error("BfsTreeProtocol: unknown message");
    }
  }
}

BfsTree BfsTreeProtocol::take_tree() {
  for (std::size_t v = 0; v < joined_.size(); ++v) {
    if (!joined_[v]) {
      throw std::runtime_error("BfsTreeProtocol: graph not connected");
    }
    std::sort(tree_.children[v].begin(), tree_.children[v].end());
    tree_.height = std::max(tree_.height, tree_.depth[v]);
  }
  return std::move(tree_);
}

// --------------------------------------------------------------- broadcast

BroadcastProtocol::BroadcastProtocol(
    const BfsTree& tree, Message payload,
    std::function<void(NodeId, const Message&)> on_receive)
    : tree_(&tree), payload_(payload), on_receive_(std::move(on_receive)) {
  payload_.type = kDown;
}

void BroadcastProtocol::on_round(Context& ctx) {
  const NodeId v = ctx.self();
  auto forward = [&] {
    if (on_receive_) on_receive_(v, payload_);
    for (NodeId child : tree_->children[v]) ctx.send_to(child, payload_);
  };
  if (ctx.round() == 0) {
    if (v == tree_->root) forward();
    return;
  }
  for (const Delivery& d : ctx.inbox()) {
    if (d.msg.type == kDown) forward();
  }
}

// --------------------------------------------------------- convergecast sum

ConvergecastSum::ConvergecastSum(const BfsTree& tree,
                                 std::vector<std::uint64_t> values)
    : tree_(&tree), acc_(std::move(values)) {
  const std::size_t n = acc_.size();
  pending_children_.resize(n);
  sent_.assign(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    pending_children_[v] =
        static_cast<std::uint32_t>(tree_->children[v].size());
  }
}

void ConvergecastSum::maybe_forward(Context& ctx) {
  const NodeId v = ctx.self();
  if (sent_[v] || pending_children_[v] != 0 || v == tree_->root) return;
  sent_[v] = 1;
  ctx.send_to(tree_->parent[v], Message{kUp, {acc_[v], 0, 0, 0}});
}

void ConvergecastSum::on_round(Context& ctx) {
  const NodeId v = ctx.self();
  for (const Delivery& d : ctx.inbox()) {
    if (d.msg.type != kUp) continue;
    acc_[v] += d.msg.f[0];
    --pending_children_[v];
  }
  maybe_forward(ctx);
}

// --------------------------------------------------- pipelined vector upcast

PipelinedVectorUpcast::PipelinedVectorUpcast(
    const BfsTree& tree, std::vector<std::vector<std::uint64_t>> values)
    : tree_(&tree), acc_(std::move(values)) {
  const std::size_t n = acc_.size();
  if (n == 0) throw std::invalid_argument("PipelinedVectorUpcast: empty");
  k_ = acc_[0].size();
  for (const auto& vec : acc_) {
    if (vec.size() != k_) {
      throw std::invalid_argument("PipelinedVectorUpcast: ragged values");
    }
  }
  entry_pending_.resize(n);
  next_send_.assign(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    entry_pending_[v].assign(
        k_, static_cast<std::uint32_t>(tree_->children[v].size()));
  }
}

void PipelinedVectorUpcast::pump(Context& ctx) {
  const NodeId v = ctx.self();
  if (v == tree_->root) return;
  std::uint32_t& cursor = next_send_[v];
  if (cursor >= k_) return;
  if (entry_pending_[v][cursor] != 0) return;
  // One (index, value) entry per round keeps within the per-edge budget.
  ctx.send_to(tree_->parent[v],
              Message{kEntry, {cursor, acc_[v][cursor], 0, 0}});
  ++cursor;
  if (cursor < k_ && entry_pending_[v][cursor] == 0) ctx.wake_me();
}

void PipelinedVectorUpcast::on_round(Context& ctx) {
  const NodeId v = ctx.self();
  for (const Delivery& d : ctx.inbox()) {
    if (d.msg.type != kEntry) continue;
    const auto index = static_cast<std::size_t>(d.msg.f[0]);
    acc_[v][index] += d.msg.f[1];
    --entry_pending_[v][index];
  }
  pump(ctx);
}

// ------------------------------------------------------ pipelined list upcast

PipelinedListUpcast::PipelinedListUpcast(
    const BfsTree& tree, std::vector<std::vector<Record>> records)
    : tree_(&tree), queue_(std::move(records)) {
  next_send_.assign(queue_.size(), 0);
}

void PipelinedListUpcast::pump(Context& ctx) {
  const NodeId v = ctx.self();
  if (v == tree_->root) return;
  std::size_t& cursor = next_send_[v];
  if (cursor >= queue_[v].size()) return;
  const Record& r = queue_[v][cursor];
  ctx.send_to(tree_->parent[v], Message{kRecord, {r[0], r[1], r[2], 0}});
  ++cursor;
  if (cursor < queue_[v].size()) ctx.wake_me();
}

void PipelinedListUpcast::on_round(Context& ctx) {
  const NodeId v = ctx.self();
  for (const Delivery& d : ctx.inbox()) {
    if (d.msg.type != kRecord) continue;
    queue_[v].push_back(Record{d.msg.f[0], d.msg.f[1], d.msg.f[2]});
  }
  pump(ctx);
}

// -------------------------------------------------------------- token walks

TokenWalkProtocol::TokenWalkProtocol(
    const Graph& g, std::vector<std::vector<WalkToken>> initial_tokens)
    : initial_(std::move(initial_tokens)) {
  if (initial_.size() != g.node_count()) {
    throw std::invalid_argument("TokenWalkProtocol: size mismatch");
  }
  stored_.resize(g.node_count());
}

void TokenWalkProtocol::route(Context& ctx, const WalkToken& token) {
  if (token.remaining == 0) {
    stored_[ctx.self()].push_back(StoredToken{token.source, token.total_len});
    return;
  }
  const auto slot = static_cast<std::uint32_t>(
      ctx.rng().next_below(ctx.degree()));
  ctx.send(slot, Message{kToken,
                         {token.source, token.remaining - 1u,
                          token.total_len, 0}});
}

void TokenWalkProtocol::on_round(Context& ctx) {
  const NodeId v = ctx.self();
  if (ctx.round() == 0) {
    for (const WalkToken& token : initial_[v]) route(ctx, token);
    initial_[v].clear();
    return;
  }
  for (const Delivery& d : ctx.inbox()) {
    if (d.msg.type != kToken) continue;
    route(ctx, WalkToken{static_cast<NodeId>(d.msg.f[0]),
                         static_cast<std::uint32_t>(d.msg.f[1]),
                         static_cast<std::uint32_t>(d.msg.f[2])});
  }
}

// ------------------------------------------------------------------ drivers

BfsTree build_bfs_tree(Network& net, NodeId root, RunStats& stats) {
  BfsTreeProtocol protocol(net.graph(), root);
  stats += net.run(protocol);
  return protocol.take_tree();
}

}  // namespace drw::congest
