#include "congest/mux.hpp"

#include "obs/trace.hpp"

#include <stdexcept>

namespace drw::congest {

namespace {
/// Salt separating lane-master derivation from the network's own per-node
/// split_key(v) family.
constexpr std::uint64_t kLaneSalt = 0x6d75786c616e6531ULL;  // "muxlane1"
}  // namespace

ProtocolMux::ProtocolMux(std::size_t node_count)
    : node_count_(node_count) {}

unsigned ProtocolMux::add_lane(Protocol& protocol,
                               std::vector<Rng>* lane_rngs) {
  if (lanes_.size() >= Network::kMaxLanes) {
    throw std::invalid_argument("ProtocolMux: too many lanes");
  }
  if (lane_rngs != nullptr && lane_rngs->size() != node_count_) {
    throw std::invalid_argument("ProtocolMux: lane rng size mismatch");
  }
  lanes_.push_back(Lane{&protocol, lane_rngs});
  return static_cast<unsigned>(lanes_.size() - 1);
}

std::vector<Rng> ProtocolMux::derive_lane_rngs(std::uint64_t seed,
                                               std::uint64_t key,
                                               std::size_t node_count) {
  const Rng lane_master = Rng(seed ^ kLaneSalt).split_key(key);
  std::vector<Rng> rngs;
  rngs.reserve(node_count);
  for (std::size_t v = 0; v < node_count; ++v) {
    rngs.push_back(lane_master.split_key(v));
  }
  return rngs;
}

void ProtocolMux::on_run_start(unsigned workers) {
  const auto lanes = static_cast<unsigned>(lanes_.size());
  if (lanes == 0) throw std::logic_error("ProtocolMux: no lanes");
  wake_.assign(static_cast<std::size_t>(lanes) * node_count_, 0);
  frozen_.assign(lanes, 0);
  stats_.assign(lanes, LaneStats{});
  last_counted_.assign(lanes, -1);
  iteration_ = 0;
  slots_.resize(workers);
  for (WorkerSlot& slot : slots_) {
    slot.sub_inbox.resize(lanes);
    for (auto& inbox : slot.sub_inbox) inbox.clear();
    slot.delivered_flag.assign(lanes, 0);
    slot.woke_flag.assign(lanes, 0);
    slot.deliveries.assign(lanes, 0);
  }
  for (const Lane& lane : lanes_) lane.protocol->on_run_start(workers);
}

void ProtocolMux::dispatch_lane(Context& ctx, WorkerSlot& slot, unsigned l,
                                NodeId v, std::span<const Delivery> sub) {
  // A lane runs when it has deliveries, asked to be woken, or during the
  // round-0 global wake -- exactly the solo activation rule, per lane.
  std::uint8_t& wake = wake_[static_cast<std::size_t>(l) * node_count_ + v];
  const bool has_wake = wake != 0;
  if (ctx.round() != 0 && sub.empty() && !has_wake) return;
  wake = 0;
  ctx.lane_ = static_cast<std::uint16_t>(l);
  ctx.lane_rng_ = lanes_[l].rngs != nullptr ? &(*lanes_[l].rngs)[v]
                                            : nullptr;
  ctx.lane_woke_ = false;
  ctx.inbox_ = sub;
  lanes_[l].protocol->on_round(ctx);
  if (ctx.lane_woke_) {
    wake = 1;
    slot.woke_flag[l] = 1;
  }
  if (!sub.empty()) {
    slot.delivered_flag[l] = 1;
    slot.deliveries[l] += sub.size();
  }
}

void ProtocolMux::on_round(Context& ctx) {
  const NodeId v = ctx.self();
  WorkerSlot& slot = slots_[ctx.worker_];
  const auto lanes = static_cast<unsigned>(lanes_.size());

  // Zero-copy path: the network already delivered into per-(node, lane)
  // inboxes (wants_lane_inboxes + within budget), so every lane dispatches
  // on its own span in place -- no partition scan, no scratch copies.
  // Frozen lanes are simply skipped (the network clears their slots after
  // this on_round), mirroring how a solo run discards a done() protocol's
  // untransmitted backlog.
  if (ctx.has_lane_inboxes()) {
    for (unsigned l = 0; l < lanes; ++l) {
      if (frozen_[l]) continue;
      dispatch_lane(ctx, slot, l, v,
                    ctx.lane_inbox(static_cast<std::uint16_t>(l)));
    }
    ctx.lane_ = 0;
    ctx.lane_rng_ = nullptr;
    ctx.inbox_ = std::span<const Delivery>();
    return;
  }

  const std::span<const Delivery> inbox = ctx.inbox();

  // Fast path: all of this node's deliveries belong to ONE lane (the
  // common case outside overlapping flood fronts) -- that lane dispatches
  // on the original span, no copy. Mixed inboxes are partitioned by lane
  // into per-worker scratch; frozen lanes' messages are dropped either
  // way.
  std::uint16_t only = 0;
  bool mixed = false;
  if (!inbox.empty()) {
    only = inbox[0].msg.lane;
    for (const Delivery& d : inbox.subspan(1)) {
      if (d.msg.lane != only) {
        mixed = true;
        break;
      }
    }
  }
  if (mixed) {
    for (unsigned l = 0; l < lanes; ++l) slot.sub_inbox[l].clear();
    for (const Delivery& d : inbox) {
      if (!frozen_[d.msg.lane]) slot.sub_inbox[d.msg.lane].push_back(d);
    }
  }

  // Dispatch lanes in ascending id order.
  for (unsigned l = 0; l < lanes; ++l) {
    if (frozen_[l]) continue;
    std::span<const Delivery> sub;
    if (mixed) {
      sub = std::span<const Delivery>(slot.sub_inbox[l]);
    } else if (!inbox.empty() && l == only) {
      sub = inbox;
    }
    dispatch_lane(ctx, slot, l, v, sub);
  }
  ctx.lane_ = 0;
  ctx.lane_rng_ = nullptr;
  ctx.inbox_ = inbox;
}

void ProtocolMux::count_round(unsigned lane, std::uint64_t round) const {
  if (static_cast<std::int64_t>(round) > last_counted_[lane]) {
    ++stats_[lane].rounds;
    last_counted_[lane] = static_cast<std::int64_t>(round);
    // Lane attribution for the trace: one instant per (lane, counted
    // round) on the lane's own track. Emitted from the driver (done()
    // runs after the compute barrier), so rings see no cross-thread
    // interleaving here.
    obs::event(obs::Name::kLaneRound, 'i', obs::kPidMux,
               static_cast<std::uint16_t>(lane), round);
  }
}

bool ProtocolMux::done() const {
  // Called once per round on the driver thread, after the compute barrier:
  // fold the workers' per-round activity flags into per-lane round counts.
  // A delivery observed at iteration t proves the lane transmitted at
  // t - 1; a wake staged at t makes t a (possibly message-free) round --
  // the same accounting rule Network applies globally.
  const std::uint64_t t = iteration_++;
  bool all_done = true;
  for (unsigned l = 0; l < lanes_.size(); ++l) {
    bool delivered = false;
    bool woke = false;
    for (WorkerSlot& slot : slots_) {
      delivered = delivered || slot.delivered_flag[l] != 0;
      woke = woke || slot.woke_flag[l] != 0;
      slot.delivered_flag[l] = 0;
      slot.woke_flag[l] = 0;
    }
    if (delivered && t >= 1) count_round(l, t - 1);
    if (woke) count_round(l, t);
    if (frozen_[l] == 0 && lanes_[l].protocol->done()) frozen_[l] = 1;
    all_done = all_done && frozen_[l] != 0;
  }
  // Refold delivery counts every round (idempotent full recompute; the run
  // can end on quiescence right after any round, and there is no after-run
  // hook).
  for (unsigned l = 0; l < lanes_.size(); ++l) {
    std::uint64_t sum = 0;
    for (const WorkerSlot& slot : slots_) sum += slot.deliveries[l];
    stats_[l].messages = sum;
  }
  return all_done;
}

}  // namespace drw::congest
