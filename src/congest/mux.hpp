// Multi-protocol round multiplexer: N independent Protocol instances
// executed inside ONE Network::run (Section 2.3's phase interleaving --
// BFS / convergecast / broadcast traversals of *different* walks share
// rounds when their connectors do not contend).
//
// Lane model:
//   * Every registered protocol is a LANE. Sends are stamped with the lane
//     id (Message::lane) and the network -- run via run_multiplexed(mux, N)
//     -- gives each (directed edge, lane) pair its own FIFO, so a lane's
//     queueing, congestion and delivery pacing are exactly what they would
//     be in a solo run. The per-edge CONGEST budget applies per lane; the
//     scheduler above the mux is responsible for only co-scheduling lanes
//     whose traffic does not contend (the paper's "connectors far apart"
//     premise), so the widened rounds stay honest.
//   * Each lane may bring its own per-node random streams (derive them with
//     ProtocolMux::derive_lane_rngs). During a lane's dispatch Context::rng
//     is retargeted to that lane's stream, so a lane's draws are
//     independent of co-scheduled lanes. A lane whose protocol draws no
//     randomness (BFS, broadcast) may pass nullptr and share the network
//     streams without consuming from them.
//   * Wakes are virtualized per lane: only the lane that called wake_me()
//     is re-dispatched at that node next round.
//
// Lane isolation invariant (tested by tests/test_mux.cpp): a mux of N
// lanes produces, for every lane, bit-identical protocol state, delivery
// traces and per-lane round/message counts as running that lane alone in
// its own Network::run (as a mux of one, i.e. with the same lane streams)
// -- at every thread count, shard partition and steal-chunk grain. The
// argument is inductive: per-lane queues and rng make round-r sends a
// function of the lane's own round-(r-1) state alone.
//
// A ProtocolMux is single-use: construct, add lanes, run once, read the
// per-lane stats. Lane protocols must follow the usual shard-safety
// contract; the mux itself only adds node-indexed or worker-indexed state.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"

namespace drw::congest {

class ProtocolMux final : public Protocol {
 public:
  /// Per-lane accounting mirroring the solo run's RunStats: `rounds` counts
  /// the rounds in which the lane transmitted or scheduled a wake (the
  /// network's own accounting rule applied per lane), `messages` its
  /// deliveries. (For lanes whose protocol uses done(), the cut-off round's
  /// discarded sends are not attributed -- none of the stitching protocols
  /// do.)
  struct LaneStats {
    std::uint64_t rounds = 0;
    std::uint64_t messages = 0;
  };

  explicit ProtocolMux(std::size_t node_count);

  /// Registers a protocol as the next lane and returns its lane id.
  /// `lane_rngs` (owned by the caller, outliving the run) supplies the
  /// lane's per-node random streams; nullptr shares the network's streams
  /// -- only isolation-preserving for protocols that draw no randomness.
  unsigned add_lane(Protocol& protocol, std::vector<Rng>* lane_rngs);

  unsigned lane_count() const noexcept {
    return static_cast<unsigned>(lanes_.size());
  }

  /// Derives the per-node random streams for a lane keyed by `key` from a
  /// network master seed. The derivation is independent of scheduling, so
  /// the same (seed, key) yields the same streams whether the lane runs
  /// muxed, solo, or grouped differently -- the root of the bit-identity
  /// guarantee across multiplexing widths.
  static std::vector<Rng> derive_lane_rngs(std::uint64_t seed,
                                           std::uint64_t key,
                                           std::size_t node_count);

  /// Valid after the run.
  const LaneStats& lane_stats(unsigned lane) const { return stats_[lane]; }

  void on_run_start(unsigned workers) override;
  void on_round(Context& ctx) override;
  /// The mux demultiplexes by lane itself, so it opts into the network's
  /// zero-copy per-(node, lane) inboxes; when the network declines (budget
  /// or single lane) on_round falls back to partitioning the mixed inbox.
  bool wants_lane_inboxes() const override { return true; }
  /// True when every lane's protocol reports done() (default-false lanes
  /// keep the run alive until global quiescence). Also the once-per-round
  /// driver hook where per-worker activity flags fold into the per-lane
  /// round counts.
  bool done() const override;

 private:
  struct Lane {
    Protocol* protocol = nullptr;
    std::vector<Rng>* rngs = nullptr;
  };

  /// Per-executor-worker scratch, cache-line separated: sub-inboxes reused
  /// across dispatches plus per-round activity flags and per-run delivery
  /// counts, folded by the driver in done().
  struct alignas(64) WorkerSlot {
    std::vector<std::vector<Delivery>> sub_inbox;   // per lane
    std::vector<std::uint8_t> delivered_flag;       // per lane, per round
    std::vector<std::uint8_t> woke_flag;            // per lane, per round
    std::vector<std::uint64_t> deliveries;          // per lane, per run
  };

  void count_round(unsigned lane, std::uint64_t round) const;
  /// Shared per-lane dispatch body (activation rule, rng/lane retarget,
  /// wake + accounting), used by both the zero-copy and the copying path.
  void dispatch_lane(Context& ctx, WorkerSlot& slot, unsigned l, NodeId v,
                     std::span<const Delivery> sub);

  std::size_t node_count_;
  std::vector<Lane> lanes_;
  /// wake_[lane * node_count_ + v]: lane asked to run at v next round.
  /// Node-indexed writes only (shard safety).
  std::vector<std::uint8_t> wake_;
  /// Lane done(): drop its traffic + stop dispatching it (set in done()).
  mutable std::vector<std::uint8_t> frozen_;
  mutable std::vector<WorkerSlot> slots_;
  // done() is the engine's only between-rounds driver hook, so the per-round
  // bookkeeping it folds is mutable by design (it runs exactly once per
  // round, single-threaded, after the compute barrier).
  mutable std::vector<LaneStats> stats_;
  mutable std::vector<std::int64_t> last_counted_;
  mutable std::uint64_t iteration_ = 0;
};

}  // namespace drw::congest
