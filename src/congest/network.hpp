// Synchronous CONGEST-model network simulator (paper Section 1.1).
//
// Model contract:
//   * Communication proceeds in discrete rounds. In each round every node may
//     send one message of O(log n) bits through each incident edge; messages
//     sent in round t are delivered at the beginning of round t+1.
//   * Local computation is free; only rounds are counted.
//
// Faithfulness mechanics:
//   * `Message` is a type tag plus at most four 64-bit words -- a constant
//     number of node IDs / counters, i.e. O(log n) bits.
//   * Each *directed* edge owns a FIFO backlog queue (a chunked arena, see
//     edge_arena.hpp). Protocols may enqueue any number of sends per round;
//     the network delivers at most one message per directed edge per round
//     and the rest wait. Congestion therefore costs rounds *emergently*,
//     exactly as in the paper's analysis (e.g. Lemma 2.1: "any iteration
//     could require more than 1 round").
//   * Round accounting: a round is counted iff it carried any activity
//     (delivery, send, or a self-scheduled wake). Global termination
//     detection is free for the driver, which matches the paper's phase
//     composition (phases have known length bounds in the real algorithm).
//
// Parallel round executor:
//   The CONGEST model makes node steps within a round independent by
//   construction, and the simulator exploits that. Nodes are partitioned
//   into `threads()` contiguous shards; each round runs two barrier-
//   separated phases on a persistent worker pool:
//
//     compute  -- active nodes run `on_round` in the canonical ascending
//                 node order, chunked for WORK-STEALING: every shard's
//                 active list is cut into weight-bounded chunks, each
//                 worker drains its own shard's chunks first and then
//                 claims remaining chunks of busier shards. Sends go to
//                 per-worker staging buffers carrying per-chunk segment
//                 marks; nothing shared is written.
//     transmit -- every shard runs ONE fused stage-merge-deliver pass over
//                 the edges it owns: first it drains one queued message per
//                 already-backlogged edge into its nodes' inboxes, then it
//                 replays the staged sends in ascending CHUNK order (chunks
//                 tile the canonical order, so the replayed sequence is the
//                 global ascending-node send order no matter which worker
//                 ran which chunk), delivering each edge's FIRST message of
//                 the round directly -- the arena is touched only by the
//                 congested long tail -- and finally assembles + chunks its
//                 own next-round active list (so the compute phase needs no
//                 extra barrier). The fusion is observationally identical
//                 to the historical merge-then-deliver sweep: inbox append
//                 order, busy-list order and max-backlog accounting are
//                 reproduced exactly (see transmit_phase).
//
//   Shards are contiguous node ranges balanced by DIRECTED-EDGE count by
//   default (Partition::kEdgeWeighted, a prefix-sum over degrees) so that
//   degree-skewed graphs -- stars, lollipops, power laws -- do not pile all
//   edge traffic onto one worker; Partition::kNodeCount keeps the legacy
//   equal-count split. Each directed edge is owned by exactly one shard (its
//   destination node's), so both phases are lock-free apart from the chunk
//   cursors. Delivery order into every inbox -- and therefore every RNG draw
//   -- is bit-identical across all thread counts, all partition strategies
//   and all steal-chunk sizes, including the fully inline 1-thread run.
//   Configure with Network::set_threads() / set_partition() /
//   set_steal_chunk() or the DRW_THREADS / DRW_PARTITION / DRW_STEAL_CHUNK
//   environment variables.
//
//   Rounds whose work falls below the dispatch grain run inline on the
//   driver thread (identical data flow and results). The grain is
//   micro-calibrated at executor build time from the measured pool dispatch
//   overhead vs a probed per-node visit cost; DRW_PARALLEL_GRAIN overrides.
//
// Protocols are event-driven: a node's `on_round` runs when it received
// messages this round, asked to be woken, or during round 0 (all nodes wake
// once so protocols can initialize). Per-node randomness comes from streams
// split off the network's master seed, so runs are deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "congest/edge_arena.hpp"
#include "congest/message.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace drw::congest {

/// Statistics for one protocol run (or an accumulation of several).
struct RunStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;     ///< total messages delivered
  /// Peak per-edge queue length observed. Counts messages that entered an
  /// edge queue; sends staged in a final round that protocol.done() cut
  /// short are discarded untransmitted and do not register here.
  std::uint64_t max_backlog = 0;
  double wall_ms = 0.0;  ///< wall-clock time inside Network::run
  /// Per-phase breakdown of wall_ms, measured on the driver thread around
  /// each phase dispatch. compute_ms + transmit_ms ~= wall_ms minus the
  /// between-phase bookkeeping; exported by the bench JSON reports.
  double compute_ms = 0.0;
  double transmit_ms = 0.0;
  /// CPU time spent merging staged sends inside the transmit phase, SUMMED
  /// across shards (shards merge concurrently, so this can legitimately
  /// exceed transmit_ms x 1; it attributes how much of transmit is merge
  /// work rather than delivery work).
  double merge_ms = 0.0;
  /// Compute chunks executed by a worker other than the owning shard's
  /// (work-stealing balance indicator; 0 for inline rounds). NOT part of
  /// the determinism contract -- results never depend on who stole what.
  std::uint64_t steals = 0;
  /// Sends that took the packed structure-of-arrays token fast path (see
  /// message.hpp PackedToken) instead of the generic PendingSend staging.
  /// Purely an attribution counter: routing is invisible to protocols.
  std::uint64_t token_sends = 0;
  /// Widest executor width CONFIGURED among accumulated runs. Rounds whose
  /// per-phase work falls below the parallel grain still execute inline on
  /// the driver thread regardless of this width.
  std::uint32_t threads = 0;

  RunStats& operator+=(const RunStats& other) noexcept {
    rounds += other.rounds;
    messages += other.messages;
    max_backlog = max_backlog > other.max_backlog ? max_backlog
                                                  : other.max_backlog;
    wall_ms += other.wall_ms;
    compute_ms += other.compute_ms;
    transmit_ms += other.transmit_ms;
    merge_ms += other.merge_ms;
    steals += other.steals;
    token_sends += other.token_sends;
    threads = threads > other.threads ? threads : other.threads;
    return *this;
  }

  /// Saturating difference of cumulative counters, for attributing deltas
  /// out of running totals (e.g. around StitchEngine::total_stats()). The
  /// max_backlog peak and threads width are not differentiable and are kept
  /// as-is.
  RunStats& operator-=(const RunStats& earlier) noexcept {
    rounds = rounds > earlier.rounds ? rounds - earlier.rounds : 0;
    messages = messages > earlier.messages ? messages - earlier.messages : 0;
    wall_ms = wall_ms > earlier.wall_ms ? wall_ms - earlier.wall_ms : 0.0;
    compute_ms = compute_ms > earlier.compute_ms
                     ? compute_ms - earlier.compute_ms : 0.0;
    transmit_ms = transmit_ms > earlier.transmit_ms
                      ? transmit_ms - earlier.transmit_ms : 0.0;
    merge_ms = merge_ms > earlier.merge_ms ? merge_ms - earlier.merge_ms
                                           : 0.0;
    steals = steals > earlier.steals ? steals - earlier.steals : 0;
    token_sends = token_sends > earlier.token_sends
                      ? token_sends - earlier.token_sends : 0;
    return *this;
  }
  friend RunStats operator-(RunStats later, const RunStats& earlier) noexcept {
    later -= earlier;
    return later;
  }
};

/// Shard partition strategy. Results are bit-identical under either; only
/// wall time differs (kEdgeWeighted tracks per-round *work* on degree-skewed
/// graphs, kNodeCount is the legacy equal-count split kept for A/B
/// benchmarks -- see bench_skew).
enum class Partition : std::uint8_t {
  kNodeCount,     ///< contiguous ranges of equal node count
  kEdgeWeighted,  ///< contiguous ranges of equal (1 + degree) weight
};

class Network;
class ProtocolMux;

/// Per-node view handed to Protocol::on_round. Only exposes information a
/// real processor would have: its own ID, its neighbors, its inbox, its coin.
class Context {
 public:
  NodeId self() const noexcept { return self_; }
  std::uint64_t round() const noexcept { return round_; }
  std::span<const Delivery> inbox() const noexcept { return inbox_; }

  /// True when this run delivers into per-(node, lane) inboxes owned by
  /// the Network (multi-lane runs whose protocol opted in via
  /// Protocol::wants_lane_inboxes and whose O(n x lanes) span table fits
  /// the memory budget). inbox() is then empty during the top-level
  /// dispatch; read lane_inbox(l) in place instead of partitioning a
  /// mixed inbox into scratch copies.
  bool has_lane_inboxes() const noexcept;
  /// This node's pending deliveries for `lane`, in arrival order --
  /// exactly the slice a per-lane partition of the mixed inbox would
  /// yield, without the copy. Valid only when has_lane_inboxes().
  std::span<const Delivery> lane_inbox(std::uint16_t lane) const noexcept;

  std::uint32_t degree() const noexcept;
  std::span<const NodeId> neighbors() const noexcept;
  NodeId neighbor(std::uint32_t slot) const noexcept;
  /// Slot of an adjacent node (degree() if not adjacent).
  std::uint32_t slot_of(NodeId neighbor_id) const noexcept;

  /// Enqueues a message on the directed edge (self -> slot-th neighbor).
  void send(std::uint32_t slot, const Message& m);
  /// Enqueues to a neighbor by ID (binary-searches the slot; must be
  /// adjacent).
  void send_to(NodeId neighbor_id, const Message& m);
  /// Requests on_round next round even if no message arrives.
  void wake_me();
  /// This node's private random stream. Under a multiplexed run the mux
  /// retargets this to the running lane's private per-node stream, so a
  /// lane's draws are independent of what other lanes consume.
  Rng& rng();

 private:
  friend class Network;
  friend class ProtocolMux;  ///< retargets lane_/lane_rng_ per lane dispatch
  Network* net_ = nullptr;
  NodeId self_ = kInvalidNode;
  std::uint64_t round_ = 0;
  unsigned worker_ = 0;  ///< executor worker running this node's chunk
  std::span<const Delivery> inbox_;
  std::uint16_t lane_ = 0;    ///< stamped onto every send
  Rng* lane_rng_ = nullptr;   ///< overrides the shared node stream when set
  bool lane_woke_ = false;    ///< wake_me() happened during a lane dispatch
};

/// A distributed algorithm: one object holding the state of *all* nodes
/// (indexed by NodeId), invoked per active node per round. Protocols must
/// only let node v's logic read node v's slice of that state.
///
/// SHARD SAFETY: `on_round` calls of different nodes may run on different
/// executor threads within a round (with work-stealing, even nodes of the
/// same shard may). The rule above is therefore load-bearing, and for
/// writes it is strict: node v's on_round may only write state indexed by v
/// (or by something only v owns this round, e.g. the job a token it just
/// received belongs to). Reads of shared *immutable* inputs (the graph, a
/// BFS tree, config) are fine; cross-node mutable scratch members are not.
/// Context::rng() is per-node and safe. Every protocol in this repository
/// has been audited against this rule.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Called once on the driver thread before round 0 of every run, with
  /// the effective executor width. Default no-op; the protocol mux uses it
  /// to size per-worker scratch.
  virtual void on_run_start(unsigned workers) { (void)workers; }

  /// Called for every active node each round (round 0 activates all nodes).
  virtual void on_round(Context& ctx) = 0;

  /// Optional early-stop: checked after each round. The default runs until
  /// quiescence (no queued messages, no wakes). Called between rounds on
  /// the driver thread; it may read any protocol state.
  virtual bool done() const { return false; }

  /// Opt-in for zero-copy per-(node, lane) inboxes on multi-lane runs:
  /// the network then delivers each lane's messages into its own span
  /// (read via Context::lane_inbox) instead of one mixed inbox, and
  /// Context::inbox() is empty during dispatch. Only meaningful for
  /// protocols that demultiplex by lane themselves (ProtocolMux); the
  /// network may still decline when n x lanes exceeds the lane-inbox
  /// memory budget, so opted-in protocols must keep the mixed-inbox path
  /// working and branch on Context::has_lane_inboxes().
  virtual bool wants_lane_inboxes() const { return false; }
};

class Network {
 public:
  /// Hard cap on run_multiplexed lanes: each lane costs one virtual FIFO
  /// head per directed edge (O(E * lanes) arena index memory).
  static constexpr unsigned kMaxLanes = 256;

  /// The graph must be connected (the paper's standing assumption).
  explicit Network(const Graph& g, std::uint64_t seed);
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const Graph& graph() const noexcept { return *graph_; }

  /// Worker threads for subsequent runs: 0 = auto (DRW_THREADS env var if
  /// set, else hardware concurrency, bounded by per-round work on small
  /// graphs). Every request is clamped to [1, min(node_count, 256)]; read
  /// back the effective width via threads() or RunStats.threads. Results
  /// are bit-identical for every thread count; 1 runs fully inline.
  void set_threads(unsigned threads);
  /// The worker count the next run() will use.
  unsigned threads() const noexcept;
  /// The auto thread count (DRW_THREADS env var or hardware concurrency).
  static unsigned default_threads();

  /// Shard partition strategy for subsequent runs (default: DRW_PARTITION
  /// env var -- "nodes" or "edges" -- else kEdgeWeighted). The executor is
  /// rebuilt lazily on the next run() when this, the thread count, or the
  /// steal-chunk grain changed; the graph itself is immutable per Network.
  void set_partition(Partition partition) noexcept {
    partition_setting_ = partition;
  }
  Partition partition() const noexcept { return partition_setting_; }

  /// Work-stealing chunk grain: target work units (1 + pending deliveries,
  /// or 1 + degree in round 0) per compute chunk. 0 = auto (DRW_STEAL_CHUNK
  /// env var, else derived from the dispatch grain). Small chunks balance
  /// better and interleave more under TSan; results never depend on it.
  void set_steal_chunk(std::uint32_t work) noexcept {
    steal_chunk_setting_ = work;
  }
  /// Effective steal-chunk grain of the current executor (0 before the
  /// first run builds it).
  std::uint32_t steal_chunk() const noexcept { return steal_chunk_; }

  /// Effective inline-dispatch grain (work units below which a phase runs
  /// on the driver thread): the DRW_PARALLEL_GRAIN override, or the value
  /// micro-calibrated when the executor was (re)built; 0 before the first
  /// run builds it.
  std::size_t dispatch_grain() const noexcept { return grain_; }

  /// Memory budget (MiB) for the zero-copy per-(node, lane) inbox table
  /// on multi-lane runs: when n x lanes span headers would exceed it, the
  /// run falls back to the mixed-inbox copying path (same results, see
  /// Protocol::wants_lane_inboxes). 0 = auto: DRW_LANE_INBOX_MB env var
  /// if set, else 64 MiB. Results are bit-identical either way -- the
  /// budget only moves the memory/speed trade-off.
  void set_lane_inbox_budget_mb(std::uint32_t mb) noexcept {
    lane_inbox_budget_mb_ = mb;
  }
  /// True while the current/last run delivered into per-lane inboxes.
  bool lane_inboxes_active() const noexcept { return lane_inboxes_on_; }

  /// Runs `protocol` to completion (quiescence or protocol.done()).
  /// Throws std::runtime_error if `max_rounds` is exceeded -- a protocol bug.
  RunStats run(Protocol& protocol, std::uint64_t max_rounds = 10'000'000);

  /// Runs a multiplexed protocol (normally a congest::ProtocolMux) with
  /// `lanes` independent message lanes: every (directed edge, lane) pair
  /// gets its own FIFO backlog, so each lane's queueing and delivery pacing
  /// is exactly what it would be in a solo run -- the per-edge CONGEST
  /// budget applies per lane, mirroring the paper's interleaving analysis
  /// where non-contending traversals share rounds. `lanes` == 1 is
  /// identical to run(). Messages must carry Message::lane < lanes.
  RunStats run_multiplexed(Protocol& protocol, unsigned lanes,
                           std::uint64_t max_rounds = 10'000'000);

  /// Node-private random stream (stable per node per network instance).
  Rng& node_rng(NodeId v) { return node_rngs_[v]; }

  /// The master seed this network's per-node streams were split from;
  /// multiplexed drivers derive per-lane streams from it (see mux.hpp).
  std::uint64_t seed() const noexcept { return seed_; }

 private:
  friend class Context;
  struct WorkerPool;

  /// A staged GENERIC send: resolved VIRTUAL edge id (directed edge x
  /// lane) + payload, buffered thread-locally during the compute phase and
  /// replayed by the owner shard. Lane regions are contiguous
  /// (lane * E + eid), so each lane's queue index block is as cache-dense
  /// as a solo run and the base edge recovers with one multiply-subtract
  /// from the message's own lane tag. The dominant packable walk tokens
  /// bypass this 56-byte record entirely (see TokenColumns below);
  /// `tokens_before` records how many of the bucket's tokens were staged
  /// before this entry, so the replay can reconstruct the exact staging
  /// interleave of the two streams.
  struct PendingSend {
    std::uint32_t eid = 0;  ///< msg.lane * directed_edge_count + base_eid
    std::uint32_t tokens_before = 0;  ///< token-column size at stage time
    Message msg;
  };

  /// Structure-of-arrays staging for packable token sends: one
  /// (worker, owner) bucket holds three parallel u64 columns (see
  /// message.hpp PackedToken for the lane/eid/payload packing). 24 bytes
  /// per send vs PendingSend's 56, and the replay loop streams three
  /// dense arrays instead of striding over embedded Message payloads.
  struct TokenColumns {
    std::vector<std::uint64_t> hdr;
    std::vector<std::uint64_t> lo;
    std::vector<std::uint64_t> hi;
  };

  /// Marks where a compute chunk's sends begin inside one (worker, owner)
  /// staging bucket -- in BOTH streams (generic entries and token
  /// columns). Each chunk is executed by exactly one worker, so its sends
  /// form one contiguous bucket segment; the transmit replay walks
  /// segments in ascending chunk order to reconstruct the canonical global
  /// send order regardless of which worker stole which chunk.
  struct SegMark {
    std::uint64_t chunk = 0;       ///< global chunk id: (shard << 32) | index
    std::uint32_t begin = 0;       ///< first PendingSend of the segment
    std::uint32_t token_begin = 0; ///< first token-column entry of the segment
  };

  /// A gathered segment during the transmit replay (owner-shard scratch).
  struct Segment {
    std::uint64_t chunk = 0;
    std::uint32_t worker = 0;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    std::uint32_t token_begin = 0;
    std::uint32_t token_end = 0;
  };

  /// Per-shard executor working set. `active`/`chunk_end`/`work` are
  /// written by the owner shard during transmit (or by the driver for the
  /// round-0 global wake) and read-only during compute; everything else is
  /// touched only by the owner's worker during a phase (the driver reads
  /// counters between phases, after the pool barrier).
  struct Shard {
    std::vector<NodeId> active;  ///< this round's nodes, ascending
    /// Cumulative chunk ends (indices into `active`): chunk c covers
    /// active[chunk_end[c-1] .. chunk_end[c]).
    std::vector<std::uint32_t> chunk_end;
    std::uint64_t work = 0;            ///< weight of `active` (dispatch sizing)
    std::vector<NodeId> delivered;     ///< inboxes filled in last transmit
    std::vector<std::uint32_t> busy;   ///< owned edges with queued messages
    std::uint64_t transmitted = 0;
    std::uint64_t max_backlog = 0;
    std::vector<Segment> merge_scratch;  ///< transmit-local segment gather
    std::vector<NodeId> wake_scratch;    ///< transmit-local wake gather
    /// Edges first touched (direct-delivered) this round, in canonical
    /// first-send order; those still backlogged after the fused pass are
    /// appended to `busy` -- reproducing exactly the busy order the
    /// unfused merge-then-deliver engine built.
    std::vector<std::uint32_t> fresh_scratch;
  };

  /// Per-worker hot counters, cache-line separated so concurrent chunk
  /// execution does not false-share. deliveries/sends/wakes are per round
  /// (driver resets), steals/merge_ns accumulate per run.
  struct alignas(64) WorkerLane {
    std::uint64_t chunk = 0;  ///< global id of the chunk being computed
    std::uint64_t deliveries = 0;
    std::uint64_t sends = 0;
    std::uint64_t wakes = 0;
    std::uint64_t steals = 0;
    std::uint64_t token_sends = 0;  ///< per run (driver resets)
    double merge_ns = 0.0;
  };

  /// One chunk cursor per shard, cache-line separated. Workers claim
  /// chunks with fetch_add; the pool barrier publishes the chunk data.
  struct alignas(64) ChunkCursor {
    std::atomic<std::uint32_t> next{0};
  };

  void stage_send(unsigned worker, NodeId from, std::uint32_t slot,
                  const Message& m, std::uint16_t lane);
  void stage_wake(unsigned worker, NodeId self);
  RunStats run_with_lanes(Protocol& protocol, unsigned lanes,
                          std::uint64_t max_rounds);
  unsigned resolve_threads() const noexcept;
  std::uint32_t resolve_steal_chunk() const noexcept;
  /// Measures pool dispatch overhead vs a probed per-node visit cost and
  /// derives the inline-dispatch grain (only when DRW_PARALLEL_GRAIN is
  /// unset and the pool is real).
  std::size_t calibrate_grain();
  /// (Re)builds the shard partition, edge ownership, arena pools, worker
  /// pool and round-0 chunking when the effective thread count, partition
  /// strategy, steal-chunk grain or lane count changed. Only between runs.
  void ensure_executor();
  void build_partition();
  /// Cuts `shard`'s active list into steal chunks of ~steal_chunk_ work
  /// units (weight 1 + pending inbox size per node) and records the total.
  void chunk_active_list(Shard& sh);
  /// Runs `phase` for every shard: on the pool when `work` crosses the
  /// dispatch grain, inline (same data flow, same results) otherwise.
  /// `collaborative` phases (compute) drain every shard's chunks from a
  /// single inline call; owner-bound phases (transmit) are called per shard.
  void dispatch(std::size_t work, void (Network::*phase)(unsigned),
                bool collaborative);
  void compute_phase(unsigned worker);
  void transmit_phase(unsigned shard);
  void run_loop(Protocol& protocol, std::uint64_t max_rounds,
                RunStats& stats);
  /// Clears backlogs, inboxes, wake flags and staged sends so the network
  /// can host the next protocol run; invoked on normal AND exception exit.
  /// `aborted` (exception path) additionally sweeps every inbox and wake
  /// flag, since a mid-compute throw strands state the per-shard lists no
  /// longer point at.
  void reset_transients(bool aborted);

  const Graph* graph_;
  std::uint64_t seed_ = 0;
  std::vector<Rng> node_rngs_;
  /// Per directed edge, target in the low word and source in the high
  /// word: the transmit hot loop needs both per delivery, and one 8-byte
  /// load halves its random-access cache traffic versus separate
  /// target/source arrays.
  std::vector<std::uint64_t> edge_endpoints_;

  unsigned threads_setting_ = 0;  ///< requested (0 = auto)
  Partition partition_setting_;   ///< requested (ctor: DRW_PARTITION / edges)
  std::uint32_t steal_chunk_setting_ = 0;  ///< requested (0 = auto)

  unsigned workers_ = 0;  ///< executor width currently built
  Partition built_partition_ = Partition::kEdgeWeighted;
  std::uint32_t built_steal_setting_ = 0;
  /// Message lanes of the current/next run: the arena holds one virtual
  /// edge queue per (directed edge, lane), id = lane * E + eid.
  unsigned run_lanes_ = 1;
  /// Lanes the arena is sized for. Grow-only: a 1-lane run on an arena
  /// sized for 8 simply leaves the upper queues untouched, so alternating
  /// mux and plain runs does not thrash the arena (or the executor).
  unsigned arena_lanes_ = 0;
  std::uint32_t steal_chunk_ = 0;  ///< effective steal-chunk grain
  std::size_t grain_ = 0;          ///< effective inline-dispatch grain

  std::vector<NodeId> shard_begin_;        ///< size workers_+1, contiguous
  std::vector<std::uint32_t> node_shard_;  ///< shard per node
  std::vector<std::uint32_t> edge_owner_;  ///< destination shard per edge
  EdgeArena arena_;
  std::vector<Shard> shards_;
  std::vector<WorkerLane> lanes_;
  std::unique_ptr<ChunkCursor[]> cursors_;  ///< one per shard
  /// staged_[worker][owner_shard]: generic sends buffered during compute,
  /// with the packed token columns and per-chunk segment marks alongside.
  std::vector<std::vector<std::vector<PendingSend>>> staged_;
  std::vector<std::vector<TokenColumns>> token_staged_;
  std::vector<std::vector<std::vector<SegMark>>> seg_marks_;
  /// wake_staged_[worker][owner_shard]: wake_me() requests, merged into the
  /// owner's next active list during transmit.
  std::vector<std::vector<std::vector<NodeId>>> wake_staged_;
  /// Cached round-0 chunking (weight 1 + degree: init work is typically
  /// degree-proportional) per shard, rebuilt with the executor.
  std::vector<std::vector<std::uint32_t>> round0_chunk_end_;
  std::vector<std::uint64_t> round0_work_;
  std::vector<std::vector<Delivery>> inbox_;
  std::vector<std::uint8_t> wake_flag_;
  std::unique_ptr<WorkerPool> pool_;

  /// Round-stamped per-virtual-edge marks driving the fused transmit pass:
  /// busy_tag (stamp * 2) marks edges that entered the round with backlog,
  /// fresh_tag (stamp * 2 + 1) edges whose first message this round was
  /// delivered directly (bypassing the arena). The stamp is bumped by the
  /// driver before every transmit dispatch and NEVER reset, so stale marks
  /// from earlier rounds/runs can't collide; marks are written only by the
  /// edge's owner shard (same discipline as the arena pools).
  std::vector<std::uint64_t> edge_mark_;
  std::uint64_t transmit_stamp_ = 0;

  /// Zero-copy per-(node, lane) inboxes (multi-lane runs whose protocol
  /// opted in and whose n x lanes table fits the budget): slot
  /// [v * lane_inbox_stride_ + lane]. Grow-only like the arena; all slots
  /// are empty between runs, so a stride change never misplaces messages.
  /// inbox_total_[v] counts v's pending deliveries across lanes (chunk
  /// weights, delivered-list bookkeeping and stats need the sum without
  /// walking the stride). Owner-shard writes only, like inbox_.
  std::vector<std::vector<Delivery>> lane_inbox_;
  std::vector<std::uint32_t> inbox_total_;
  unsigned lane_inbox_stride_ = 0;
  bool lane_inboxes_on_ = false;
  std::uint32_t lane_inbox_budget_mb_ = 0;  ///< 0 = env/default

  Protocol* running_ = nullptr;  ///< current protocol during run()
  std::uint64_t round_ = 0;
  bool global_wake_ = false;      ///< round 0: every node is active
  bool parallel_round_ = false;   ///< current compute went to the pool
};

}  // namespace drw::congest
