// Synchronous CONGEST-model network simulator (paper Section 1.1).
//
// Model contract:
//   * Communication proceeds in discrete rounds. In each round every node may
//     send one message of O(log n) bits through each incident edge; messages
//     sent in round t are delivered at the beginning of round t+1.
//   * Local computation is free; only rounds are counted.
//
// Faithfulness mechanics:
//   * `Message` is a type tag plus at most four 64-bit words -- a constant
//     number of node IDs / counters, i.e. O(log n) bits.
//   * Each *directed* edge owns a FIFO backlog queue. Protocols may enqueue
//     any number of sends per round; the network delivers at most one message
//     per directed edge per round and the rest wait. Congestion therefore
//     costs rounds *emergently*, exactly as in the paper's analysis (e.g.
//     Lemma 2.1: "any iteration could require more than 1 round").
//   * Round accounting: a round is counted iff it carried any activity
//     (delivery, send, or a self-scheduled wake). Global termination
//     detection is free for the driver, which matches the paper's phase
//     composition (phases have known length bounds in the real algorithm).
//
// Protocols are event-driven: a node's `on_round` runs when it received
// messages this round, asked to be woken, or during round 0 (all nodes wake
// once so protocols can initialize). Per-node randomness comes from streams
// split off the network's master seed, so runs are deterministic.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace drw::congest {

/// A CONGEST message: type tag + <= 4 payload words (O(log n) bits).
struct Message {
  std::uint16_t type = 0;
  std::array<std::uint64_t, 4> f{};
};
static_assert(sizeof(Message) <= 48, "Message must stay O(log n) bits");

/// A delivered message together with the neighbor it arrived from (the
/// CONGEST model lets the receiver identify the incoming edge).
struct Delivery {
  Message msg;
  NodeId from = kInvalidNode;
};

/// Statistics for one protocol run (or an accumulation of several).
struct RunStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;     ///< total messages delivered
  std::uint64_t max_backlog = 0;  ///< peak per-edge queue length observed

  RunStats& operator+=(const RunStats& other) noexcept {
    rounds += other.rounds;
    messages += other.messages;
    max_backlog = max_backlog > other.max_backlog ? max_backlog
                                                  : other.max_backlog;
    return *this;
  }

  /// Saturating difference of cumulative counters, for attributing deltas
  /// out of running totals (e.g. around StitchEngine::total_stats()). The
  /// max_backlog peak is not differentiable and is kept as-is.
  RunStats& operator-=(const RunStats& earlier) noexcept {
    rounds = rounds > earlier.rounds ? rounds - earlier.rounds : 0;
    messages = messages > earlier.messages ? messages - earlier.messages : 0;
    return *this;
  }
  friend RunStats operator-(RunStats later, const RunStats& earlier) noexcept {
    later -= earlier;
    return later;
  }
};

class Network;

/// Per-node view handed to Protocol::on_round. Only exposes information a
/// real processor would have: its own ID, its neighbors, its inbox, its coin.
class Context {
 public:
  NodeId self() const noexcept { return self_; }
  std::uint64_t round() const noexcept { return round_; }
  std::span<const Delivery> inbox() const noexcept { return inbox_; }

  std::uint32_t degree() const noexcept;
  std::span<const NodeId> neighbors() const noexcept;
  NodeId neighbor(std::uint32_t slot) const noexcept;
  /// Slot of an adjacent node (degree() if not adjacent).
  std::uint32_t slot_of(NodeId neighbor_id) const noexcept;

  /// Enqueues a message on the directed edge (self -> slot-th neighbor).
  void send(std::uint32_t slot, const Message& m);
  /// Enqueues to a neighbor by ID (binary-searches the slot; must be
  /// adjacent).
  void send_to(NodeId neighbor_id, const Message& m);
  /// Requests on_round next round even if no message arrives.
  void wake_me();
  /// This node's private random stream.
  Rng& rng();

 private:
  friend class Network;
  Network* net_ = nullptr;
  NodeId self_ = kInvalidNode;
  std::uint64_t round_ = 0;
  std::span<const Delivery> inbox_;
};

/// A distributed algorithm: one object holding the state of *all* nodes
/// (indexed by NodeId), invoked per active node per round. Protocols must
/// only let node v's logic read node v's slice of that state.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Called for every active node each round (round 0 activates all nodes).
  virtual void on_round(Context& ctx) = 0;

  /// Optional early-stop: checked after each round. The default runs until
  /// quiescence (no queued messages, no wakes).
  virtual bool done() const { return false; }
};

class Network {
 public:
  /// The graph must be connected (the paper's standing assumption).
  explicit Network(const Graph& g, std::uint64_t seed);

  const Graph& graph() const noexcept { return *graph_; }

  /// Runs `protocol` to completion (quiescence or protocol.done()).
  /// Throws std::runtime_error if `max_rounds` is exceeded -- a protocol bug.
  RunStats run(Protocol& protocol, std::uint64_t max_rounds = 10'000'000);

  /// Node-private random stream (stable per node per network instance).
  Rng& node_rng(NodeId v) { return node_rngs_[v]; }

 private:
  friend class Context;

  void enqueue(NodeId from, std::uint32_t slot, const Message& m);

  const Graph* graph_;
  std::vector<Rng> node_rngs_;

  // Directed edge e = adjacency index of (from -> to); queues_[e] is its
  // backlog. edge_source_[e] caches `from` for delivery bookkeeping.
  std::vector<std::deque<Message>> queues_;
  std::vector<NodeId> edge_source_;
  std::vector<std::uint32_t> busy_edges_;  // queues with pending messages

  // Double-buffered inboxes + wake scheduling for the run loop.
  std::vector<std::vector<Delivery>> inbox_;
  std::vector<NodeId> inbox_nonempty_;
  std::vector<std::uint8_t> wake_flag_;
  std::vector<NodeId> wake_list_;
  std::uint64_t sends_this_round_ = 0;
  std::uint64_t wakes_next_round_ = 0;
  std::uint64_t max_backlog_ = 0;
};

}  // namespace drw::congest
