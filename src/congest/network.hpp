// Synchronous CONGEST-model network simulator (paper Section 1.1).
//
// Model contract:
//   * Communication proceeds in discrete rounds. In each round every node may
//     send one message of O(log n) bits through each incident edge; messages
//     sent in round t are delivered at the beginning of round t+1.
//   * Local computation is free; only rounds are counted.
//
// Faithfulness mechanics:
//   * `Message` is a type tag plus at most four 64-bit words -- a constant
//     number of node IDs / counters, i.e. O(log n) bits.
//   * Each *directed* edge owns a FIFO backlog queue (a chunked arena, see
//     edge_arena.hpp). Protocols may enqueue any number of sends per round;
//     the network delivers at most one message per directed edge per round
//     and the rest wait. Congestion therefore costs rounds *emergently*,
//     exactly as in the paper's analysis (e.g. Lemma 2.1: "any iteration
//     could require more than 1 round").
//   * Round accounting: a round is counted iff it carried any activity
//     (delivery, send, or a self-scheduled wake). Global termination
//     detection is free for the driver, which matches the paper's phase
//     composition (phases have known length bounds in the real algorithm).
//
// Parallel round executor:
//   The CONGEST model makes node steps within a round independent by
//   construction, and the simulator exploits that. Nodes are partitioned
//   into `threads()` contiguous shards; each round runs two barrier-
//   separated phases on a persistent worker pool:
//
//     compute  -- every shard's active nodes run `on_round` in ascending
//                 node order. Sends go to a per-worker staging buffer
//                 bucketed by the DESTINATION edge's owner shard; nothing
//                 shared is written.
//     transmit -- every shard merges the staged sends for the edges it owns
//                 (scanning workers in ascending order, so the merged order
//                 is the global ascending-node send order regardless of the
//                 thread count), then delivers at most one queued message
//                 per owned edge into its own nodes' inboxes.
//
//   Each directed edge is owned by exactly one shard (its destination
//   node's), so both phases are lock-free. Delivery order into every inbox
//   -- and therefore every RNG draw -- is bit-identical across all thread
//   counts, including 1. Configure with Network::set_threads() or the
//   DRW_THREADS environment variable (default: hardware concurrency).
//
// Protocols are event-driven: a node's `on_round` runs when it received
// messages this round, asked to be woken, or during round 0 (all nodes wake
// once so protocols can initialize). Per-node randomness comes from streams
// split off the network's master seed, so runs are deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "congest/edge_arena.hpp"
#include "congest/message.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace drw::congest {

/// Statistics for one protocol run (or an accumulation of several).
struct RunStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;     ///< total messages delivered
  /// Peak per-edge queue length observed. Counts messages that entered an
  /// edge queue; sends staged in a final round that protocol.done() cut
  /// short are discarded untransmitted and do not register here.
  std::uint64_t max_backlog = 0;
  double wall_ms = 0.0;  ///< wall-clock time inside Network::run
  /// Widest executor width CONFIGURED among accumulated runs. Rounds whose
  /// per-phase work falls below the parallel grain still execute inline on
  /// the driver thread regardless of this width.
  std::uint32_t threads = 0;

  RunStats& operator+=(const RunStats& other) noexcept {
    rounds += other.rounds;
    messages += other.messages;
    max_backlog = max_backlog > other.max_backlog ? max_backlog
                                                  : other.max_backlog;
    wall_ms += other.wall_ms;
    threads = threads > other.threads ? threads : other.threads;
    return *this;
  }

  /// Saturating difference of cumulative counters, for attributing deltas
  /// out of running totals (e.g. around StitchEngine::total_stats()). The
  /// max_backlog peak and threads width are not differentiable and are kept
  /// as-is.
  RunStats& operator-=(const RunStats& earlier) noexcept {
    rounds = rounds > earlier.rounds ? rounds - earlier.rounds : 0;
    messages = messages > earlier.messages ? messages - earlier.messages : 0;
    wall_ms = wall_ms > earlier.wall_ms ? wall_ms - earlier.wall_ms : 0.0;
    return *this;
  }
  friend RunStats operator-(RunStats later, const RunStats& earlier) noexcept {
    later -= earlier;
    return later;
  }
};

class Network;

/// Per-node view handed to Protocol::on_round. Only exposes information a
/// real processor would have: its own ID, its neighbors, its inbox, its coin.
class Context {
 public:
  NodeId self() const noexcept { return self_; }
  std::uint64_t round() const noexcept { return round_; }
  std::span<const Delivery> inbox() const noexcept { return inbox_; }

  std::uint32_t degree() const noexcept;
  std::span<const NodeId> neighbors() const noexcept;
  NodeId neighbor(std::uint32_t slot) const noexcept;
  /// Slot of an adjacent node (degree() if not adjacent).
  std::uint32_t slot_of(NodeId neighbor_id) const noexcept;

  /// Enqueues a message on the directed edge (self -> slot-th neighbor).
  void send(std::uint32_t slot, const Message& m);
  /// Enqueues to a neighbor by ID (binary-searches the slot; must be
  /// adjacent).
  void send_to(NodeId neighbor_id, const Message& m);
  /// Requests on_round next round even if no message arrives.
  void wake_me();
  /// This node's private random stream.
  Rng& rng();

 private:
  friend class Network;
  Network* net_ = nullptr;
  NodeId self_ = kInvalidNode;
  std::uint64_t round_ = 0;
  unsigned worker_ = 0;  ///< executor shard running this node
  std::span<const Delivery> inbox_;
};

/// A distributed algorithm: one object holding the state of *all* nodes
/// (indexed by NodeId), invoked per active node per round. Protocols must
/// only let node v's logic read node v's slice of that state.
///
/// SHARD SAFETY: `on_round` calls of different nodes may run on different
/// executor threads within a round. The rule above is therefore load-
/// bearing, and for writes it is strict: node v's on_round may only write
/// state indexed by v (or by something only v owns this round, e.g. the
/// job a token it just received belongs to). Reads of shared *immutable*
/// inputs (the graph, a BFS tree, config) are fine; cross-node mutable
/// scratch members are not. Context::rng() is per-node and safe. Every
/// protocol in this repository has been audited against this rule.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Called for every active node each round (round 0 activates all nodes).
  virtual void on_round(Context& ctx) = 0;

  /// Optional early-stop: checked after each round. The default runs until
  /// quiescence (no queued messages, no wakes). Called between rounds on
  /// the driver thread; it may read any protocol state.
  virtual bool done() const { return false; }
};

class Network {
 public:
  /// The graph must be connected (the paper's standing assumption).
  explicit Network(const Graph& g, std::uint64_t seed);
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const Graph& graph() const noexcept { return *graph_; }

  /// Worker threads for subsequent runs: 0 = auto (DRW_THREADS env var if
  /// set, else hardware concurrency, bounded by per-round work on small
  /// graphs). Every request is clamped to [1, min(node_count, 256)]; read
  /// back the effective width via threads() or RunStats.threads. Results
  /// are bit-identical for every thread count; 1 runs fully inline.
  void set_threads(unsigned threads);
  /// The worker count the next run() will use.
  unsigned threads() const noexcept;
  /// The auto thread count (DRW_THREADS env var or hardware concurrency).
  static unsigned default_threads();

  /// Runs `protocol` to completion (quiescence or protocol.done()).
  /// Throws std::runtime_error if `max_rounds` is exceeded -- a protocol bug.
  RunStats run(Protocol& protocol, std::uint64_t max_rounds = 10'000'000);

  /// Node-private random stream (stable per node per network instance).
  Rng& node_rng(NodeId v) { return node_rngs_[v]; }

 private:
  friend class Context;
  struct WorkerPool;

  /// A staged send: resolved directed-edge id + payload, buffered thread-
  /// locally during the compute phase and merged by the owner shard.
  struct PendingSend {
    std::uint32_t eid = 0;
    Message msg;
  };

  /// Per-shard executor working set. Every field is touched only by the
  /// shard's worker during a phase (the driver reads counters between
  /// phases, after the pool barrier).
  struct Shard {
    std::vector<NodeId> active;        ///< this round's nodes, ascending
    std::vector<NodeId> delivered;     ///< inboxes filled for next round
    std::vector<NodeId> wake_pending;  ///< wake_me() requests for next round
    std::vector<NodeId> wake_scratch;  ///< last round's consumed wakes
    std::vector<std::uint32_t> busy;   ///< owned edges with queued messages
    std::uint64_t deliveries = 0;      ///< per-round counters, then run peak
    std::uint64_t sends = 0;
    std::uint64_t wakes = 0;
    std::uint64_t transmitted = 0;
    std::uint64_t max_backlog = 0;
  };

  void stage_send(unsigned worker, NodeId from, std::uint32_t slot,
                  const Message& m);
  void stage_wake(unsigned worker, NodeId self);
  unsigned shard_of(NodeId v) const noexcept;
  unsigned resolve_threads() const noexcept;
  /// (Re)builds the shard partition, edge ownership, arena pools and worker
  /// pool when the effective thread count changed. Only between runs.
  void ensure_executor();
  /// Runs `phase` for every shard: on the pool when `work` crosses the
  /// parallel grain, inline (same data flow, same results) otherwise.
  void dispatch(std::size_t work, void (Network::*phase)(unsigned));
  void compute_phase(unsigned shard);
  void transmit_phase(unsigned shard);
  void run_loop(Protocol& protocol, std::uint64_t max_rounds,
                RunStats& stats);
  /// Clears backlogs, inboxes, wake flags and staged sends so the network
  /// can host the next protocol run; invoked on normal AND exception exit.
  /// `aborted` (exception path) additionally sweeps every inbox and wake
  /// flag, since a mid-compute throw strands state the per-shard lists no
  /// longer point at.
  void reset_transients(bool aborted);

  const Graph* graph_;
  std::vector<Rng> node_rngs_;
  std::vector<NodeId> edge_source_;  ///< source node per directed edge

  unsigned threads_setting_ = 0;  ///< requested (0 = auto)
  unsigned workers_ = 0;          ///< executor width currently built
  std::vector<NodeId> shard_begin_;        ///< size workers_+1, contiguous
  std::vector<std::uint32_t> edge_owner_;  ///< destination shard per edge
  EdgeArena arena_;
  std::vector<Shard> shards_;
  /// staged_[worker][owner_shard]: sends buffered during compute.
  std::vector<std::vector<std::vector<PendingSend>>> staged_;
  std::vector<std::vector<Delivery>> inbox_;
  std::vector<std::uint8_t> wake_flag_;
  std::unique_ptr<WorkerPool> pool_;

  Protocol* running_ = nullptr;  ///< current protocol during run()
  std::uint64_t round_ = 0;
  bool global_wake_ = false;  ///< round 0: every node is active
};

}  // namespace drw::congest
