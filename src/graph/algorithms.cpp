#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace drw {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  std::vector<std::uint32_t> dist(g.node_count(), kUnreachable);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (NodeId u : g.neighbors(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        frontier.push(u);
      }
    }
  }
  return dist;
}

std::vector<NodeId> bfs_parents(const Graph& g, NodeId source) {
  std::vector<NodeId> parent(g.node_count(), kInvalidNode);
  std::queue<NodeId> frontier;
  parent[source] = source;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (NodeId u : g.neighbors(v)) {
      if (parent[u] == kInvalidNode) {
        parent[u] = v;
        frontier.push(u);
      }
    }
  }
  return parent;
}

std::vector<std::uint32_t> connected_components(const Graph& g) {
  std::vector<std::uint32_t> comp(g.node_count(), kUnreachable);
  std::uint32_t label = 0;
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (comp[start] != kUnreachable) continue;
    std::queue<NodeId> frontier;
    comp[start] = label;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (NodeId u : g.neighbors(v)) {
        if (comp[u] == kUnreachable) {
          comp[u] = label;
          frontier.push(u);
        }
      }
    }
    ++label;
  }
  return comp;
}

bool is_connected(const Graph& g) {
  if (g.node_count() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

std::uint32_t eccentricity(const Graph& g, NodeId v) {
  const auto dist = bfs_distances(g, v);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    if (d == kUnreachable) throw std::runtime_error("eccentricity: disconnected");
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t exact_diameter(const Graph& g) {
  if (g.node_count() == 0) return 0;
  std::uint32_t diameter = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    diameter = std::max(diameter, eccentricity(g, v));
  }
  return diameter;
}

std::uint32_t double_sweep_diameter_estimate(const Graph& g, NodeId start) {
  if (g.node_count() == 0) return 0;
  auto dist = bfs_distances(g, start);
  NodeId far = start;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (dist[v] != kUnreachable && dist[v] > dist[far]) far = v;
  }
  return eccentricity(g, far);
}

}  // namespace drw
