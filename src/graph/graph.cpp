#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace drw {

void Graph::finalize_owned() {
  backing_.reset();
  offsets_ = offsets_store_.data();
  adjacency_ = adjacency_store_.data();
  node_count_ = offsets_store_.empty() ? 0 : offsets_store_.size() - 1;
  adjacency_count_ = adjacency_store_.size();
}

void Graph::assign(const Graph& other) {
  offsets_store_ = other.offsets_store_;
  adjacency_store_ = other.adjacency_store_;
  backing_ = other.backing_;
  node_count_ = other.node_count_;
  adjacency_count_ = other.adjacency_count_;
  if (other.offsets_store_.empty()) {
    // View (or empty): share the external pointers and their backing.
    offsets_ = other.offsets_;
    adjacency_ = other.adjacency_;
  } else {
    offsets_ = offsets_store_.data();
    adjacency_ = adjacency_store_.data();
  }
}

Graph Graph::from_csr(std::vector<std::uint64_t> offsets,
                      std::vector<NodeId> adjacency) {
  if (offsets.empty()) {
    throw std::invalid_argument("Graph::from_csr: offsets must have n+1 entries");
  }
  if (offsets.front() != 0 || offsets.back() != adjacency.size()) {
    throw std::invalid_argument("Graph::from_csr: offsets do not frame adjacency");
  }
  Graph g;
  g.offsets_store_ = std::move(offsets);
  g.adjacency_store_ = std::move(adjacency);
  g.finalize_owned();
  return g;
}

Graph Graph::view(std::span<const std::uint64_t> offsets,
                  std::span<const NodeId> adjacency,
                  std::shared_ptr<const void> backing) {
  if (offsets.empty()) {
    throw std::invalid_argument("Graph::view: offsets must have n+1 entries");
  }
  if (offsets.front() != 0 || offsets.back() != adjacency.size()) {
    throw std::invalid_argument("Graph::view: offsets do not frame adjacency");
  }
  Graph g;
  g.backing_ = std::move(backing);
  g.offsets_ = offsets.data();
  g.adjacency_ = adjacency.data();
  g.node_count_ = offsets.size() - 1;
  g.adjacency_count_ = adjacency.size();
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const noexcept {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::uint32_t Graph::slot_of(NodeId v, NodeId u) const noexcept {
  const auto nbrs = neighbors(v);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), u);
  if (it == nbrs.end() || *it != u) return degree(v);
  return static_cast<std::uint32_t>(it - nbrs.begin());
}

std::uint32_t Graph::max_degree() const noexcept {
  std::uint32_t best = 0;
  for (NodeId v = 0; v < node_count(); ++v) best = std::max(best, degree(v));
  return best;
}

std::uint32_t Graph::min_degree() const noexcept {
  if (node_count() == 0) return 0;
  std::uint32_t best = degree(0);
  for (NodeId v = 1; v < node_count(); ++v) best = std::min(best, degree(v));
  return best;
}

std::string Graph::summary() const {
  return "n=" + std::to_string(node_count()) + " m=" +
         std::to_string(edge_count()) + " degmin=" +
         std::to_string(min_degree()) + " degmax=" +
         std::to_string(max_degree());
}

GraphBuilder::GraphBuilder(std::size_t node_count) : node_count_(node_count) {}

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  if (u == v) throw std::invalid_argument("GraphBuilder: self-loop");
  if (u >= node_count_ || v >= node_count_) {
    throw std::invalid_argument("GraphBuilder: node out of range");
  }
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::build() const {
  std::vector<std::pair<NodeId, NodeId>> edges = edges_;
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Graph g;
  g.offsets_store_.assign(node_count_ + 1, 0);
  for (const auto& [u, v] : edges) {
    ++g.offsets_store_[u + 1];
    ++g.offsets_store_[v + 1];
  }
  for (std::size_t i = 1; i <= node_count_; ++i) {
    g.offsets_store_[i] += g.offsets_store_[i - 1];
  }
  g.adjacency_store_.resize(edges.size() * 2);
  std::vector<std::uint64_t> cursor(g.offsets_store_.begin(),
                                    g.offsets_store_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.adjacency_store_[cursor[u]++] = v;
    g.adjacency_store_[cursor[v]++] = u;
  }
  g.finalize_owned();
  // Each node's slice is already sorted because edges were globally sorted by
  // (min, max); the v-side insertions for a fixed v arrive in increasing u.
  // The u-side insertions for fixed u arrive in increasing v. Both hold, so
  // no per-node sort is needed; assert in debug builds.
#ifndef NDEBUG
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 1; i < nbrs.size(); ++i) {
      if (nbrs[i - 1] >= nbrs[i]) {
        throw std::logic_error("GraphBuilder: adjacency not sorted");
      }
    }
  }
#endif
  return g;
}

}  // namespace drw
