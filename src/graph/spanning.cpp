#include "graph/spanning.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/matrix.hpp"

namespace drw {

std::string SpanningTree::canonical_key() const {
  std::string key;
  for (const auto& [u, v] : edges) {
    key += std::to_string(u);
    key += '-';
    key += std::to_string(v);
    key += ',';
  }
  return key;
}

SpanningTree tree_from_parents(const Graph& g,
                               const std::vector<NodeId>& parent) {
  if (parent.size() != g.node_count()) {
    throw std::invalid_argument("tree_from_parents: size mismatch");
  }
  SpanningTree tree;
  std::size_t roots = 0;
  for (NodeId v = 0; v < parent.size(); ++v) {
    if (parent[v] == v) {
      ++roots;
      continue;
    }
    if (parent[v] == kInvalidNode || parent[v] >= g.node_count()) {
      throw std::invalid_argument("tree_from_parents: bad parent");
    }
    NodeId a = v;
    NodeId b = parent[v];
    if (a > b) std::swap(a, b);
    tree.edges.emplace_back(a, b);
  }
  if (roots != 1) throw std::invalid_argument("tree_from_parents: roots != 1");
  std::sort(tree.edges.begin(), tree.edges.end());
  if (!is_spanning_tree(g, tree)) {
    throw std::invalid_argument("tree_from_parents: not a spanning tree");
  }
  return tree;
}

bool is_spanning_tree(const Graph& g, const SpanningTree& tree) {
  const std::size_t n = g.node_count();
  if (n == 0) return false;
  if (tree.edges.size() != n - 1) return false;
  for (const auto& [u, v] : tree.edges) {
    if (u >= n || v >= n || !g.has_edge(u, v)) return false;
  }
  // Union-find acyclicity + connectivity check.
  std::vector<NodeId> root(n);
  std::iota(root.begin(), root.end(), 0);
  auto find = [&](NodeId x) {
    while (root[x] != x) {
      root[x] = root[root[x]];
      x = root[x];
    }
    return x;
  };
  for (const auto& [u, v] : tree.edges) {
    const NodeId ru = find(u);
    const NodeId rv = find(v);
    if (ru == rv) return false;  // cycle
    root[ru] = rv;
  }
  return true;  // n-1 acyclic edges on n nodes => spanning tree
}

double count_spanning_trees(const Graph& g) {
  const std::size_t n = g.node_count();
  if (n < 2) throw std::invalid_argument("count_spanning_trees: n < 2");
  // Reduced Laplacian: drop the last row/column.
  Matrix laplacian(n - 1, n - 1, 0.0);
  for (NodeId v = 0; v + 1 < n; ++v) {
    laplacian(v, v) = static_cast<double>(g.degree(v));
    for (NodeId u : g.neighbors(v)) {
      if (u + 1 < n) laplacian(v, u) -= 1.0;
    }
  }
  const auto det = laplacian.log_det();
  if (det.sign == 0) return 0.0;
  return det.sign * std::exp(det.log_abs);
}

}  // namespace drw
