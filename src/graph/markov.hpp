// Exact (centralized) Markov-chain computations used as ground truth.
//
// The distributed algorithms in src/core and src/apps are validated against
// this oracle: SINGLE-RANDOM-WALK must sample exactly from the l-step walk
// distribution (Theorem 2.5 is Las Vegas), and the decentralized mixing-time
// estimator (Section 4.2) must bracket the exact tau_x(epsilon) computed
// here. All computations use sparse vector-times-operator iteration, O(l*m)
// per l-step distribution, which comfortably handles the validation sizes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "graph/transition.hpp"

namespace drw {

class MarkovOracle {
 public:
  /// Oracle for any supported TransitionModel: the paper's simple walk
  /// (default), the lazy chain Q = (I+P)/2, or Metropolis-Hastings toward
  /// the uniform distribution.
  explicit MarkovOracle(const Graph& g,
                        TransitionModel model = TransitionModel::kSimple);
  /// Back-compat convenience: lazy flag selects kLazy.
  MarkovOracle(const Graph& g, bool lazy)
      : MarkovOracle(g, lazy ? TransitionModel::kLazy
                             : TransitionModel::kSimple) {}

  const Graph& graph() const noexcept { return *graph_; }
  TransitionModel model() const noexcept { return model_; }
  bool lazy() const noexcept { return model_ == TransitionModel::kLazy; }

  /// One step of the chain applied to distribution `p` (by value -> result).
  std::vector<double> step(const std::vector<double>& p) const;

  /// Exact distribution of the walk position after `steps` steps from
  /// `source` (pi_x(t) in Definition 4.2).
  std::vector<double> distribution_after(NodeId source,
                                         std::uint64_t steps) const;

  /// Stationary distribution: pi(v) = d(v)/2m for the simple and lazy
  /// chains, uniform 1/n for Metropolis-Hastings.
  std::vector<double> stationary() const;

  /// ||pi_x(t) - pi||_1 as in Definition 4.3.
  double l1_to_stationary(NodeId source, std::uint64_t steps) const;

  /// Exact tau_x(eps) = min{ t : ||pi_x(t) - pi||_1 < eps } by doubling +
  /// binary search (valid because the L1 distance is monotone, Lemma 4.4 --
  /// monotonicity holds for the lazy chain; for the non-lazy chain on
  /// bipartite graphs there is no mixing, so nullopt is returned when the
  /// distance has not dropped below eps by `max_steps`).
  std::optional<std::uint64_t> mixing_time(NodeId source, double eps,
                                           std::uint64_t max_steps) const;

  /// tau^x_mix = tau_x(1/(2e)) per Definition 4.3.
  std::optional<std::uint64_t> mixing_time_standard(
      NodeId source, std::uint64_t max_steps) const;

  /// Second-largest eigenvalue modulus of the chain via power iteration on
  /// the pi-orthogonal complement; spectral gap is 1 - lambda_2. Uses the
  /// time-reversible structure (inner product weighted by 1/pi).
  double second_eigenvalue(std::size_t iterations = 4000) const;

  /// Bounds relating mixing time and spectral gap (Section 4.2):
  /// 1/(1 - lambda_2) <= tau_mix <= log(n)/(1 - lambda_2).
  struct SpectralBounds {
    double lambda2 = 0.0;
    double gap = 0.0;
    double tau_lower = 0.0;
    double tau_upper = 0.0;
  };
  SpectralBounds spectral_bounds() const;

 private:
  std::vector<double> right_multiply(const std::vector<double>& f) const;
  const Graph* graph_;
  TransitionModel model_;
};

}  // namespace drw
