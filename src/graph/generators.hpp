// Graph family generators used across tests, examples and benchmarks.
//
// Families are chosen to exercise the paper's claims: low-diameter expanders
// (where sublinear walks shine), high-diameter paths/cycles (where the visit
// bound of Lemma 2.6 is tight), lollipop/barbell graphs (slow mixing, large
// cover time), random geometric graphs (the ad-hoc-network motivation from
// Section 1.2), and structured graphs for exact validation.
//
// Every random generator takes an Rng so results are reproducible; generators
// that can produce disconnected graphs retry or augment until connected.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace drw::gen {

/// Path v0 - v1 - ... - v_{n-1}. Diameter n-1.
Graph path(std::size_t n);

/// Cycle on n >= 3 nodes. Diameter floor(n/2); walks on it are periodic,
/// the adversarial case for fixed-length short walks (Lemma 2.7 ablation).
Graph cycle(std::size_t n);

/// rows x cols grid. Diameter rows+cols-2.
Graph grid(std::size_t rows, std::size_t cols);

/// rows x cols torus (wrap-around grid); 4-regular when rows, cols >= 3.
Graph torus(std::size_t rows, std::size_t cols);

/// d-dimensional hypercube; n = 2^dim nodes, diameter dim.
Graph hypercube(std::size_t dim);

/// Complete graph K_n.
Graph complete(std::size_t n);

/// Star: center 0 connected to n-1 leaves.
Graph star(std::size_t n);

/// Complete binary tree with n nodes (heap-indexed).
Graph binary_tree(std::size_t n);

/// Caterpillar: path spine of `spine` nodes, `legs` leaves per spine node.
Graph caterpillar(std::size_t spine, std::size_t legs);

/// Lollipop: clique of size `clique_n` attached to a path of `path_n` nodes.
/// Classic worst case for cover time / visit concentration.
Graph lollipop(std::size_t clique_n, std::size_t path_n);

/// Barbell: two cliques of size `clique_n` joined by a path of `path_n`
/// nodes. Mixing time is exponential-in-constant slow (bottleneck), the
/// stress case for mixing-time estimation (E8).
Graph barbell(std::size_t clique_n, std::size_t path_n);

/// Erdos-Renyi G(n, p), conditioned on connectivity: after sampling, any
/// disconnected components are joined by uniformly chosen bridge edges.
Graph erdos_renyi_connected(std::size_t n, double p, Rng& rng);

/// Random d-regular graph via the configuration model with rejection of
/// self-loops/multi-edges, then connectivity patching (which can perturb a
/// few degrees). For d >= 3 the result is an expander with high probability;
/// used as the "low diameter, fast mixing" family.
Graph random_regular(std::size_t n, std::uint32_t d, Rng& rng);

/// Power-law (scale-free) graph via preferential attachment (Barabasi-
/// Albert): nodes arrive one at a time and connect `m` edges to existing
/// nodes picked proportionally to degree. Produces the heavy-tailed hub
/// degrees that stress executor load balance (hubs concentrate edge
/// traffic); connected by construction.
Graph power_law(std::size_t n, std::uint32_t m, Rng& rng);

/// Random geometric graph: n points uniform in the unit square, edges
/// between pairs within `radius`; components joined by nearest-pair bridges.
/// The paper (Section 1.2) cites RGGs as the ad-hoc network model where
/// mixing time exceeds diameter by Omega(sqrt(n)).
Graph random_geometric(std::size_t n, double radius, Rng& rng);

/// A path of `segments` expanders, each a random d-regular graph of size
/// `segment_n`, joined by single bridge edges. Diameter ~ segments *
/// O(log segment_n): lets E2 sweep D while holding n and degree roughly
/// fixed.
Graph expander_chain(std::size_t segments, std::size_t segment_n,
                     std::uint32_t d, Rng& rng);

}  // namespace drw::gen
