// Transition models for the walk protocols.
//
// The paper focuses on the simple random walk "for the sake of obtaining the
// best possible bounds" but notes its predecessor "applies to the more
// general Metropolis-Hastings walk" (Section 1.3). This library supports
// three chains, selectable per walk:
//
//   * kSimple     -- uniform neighbor (the paper's default).
//   * kLazy       -- stay with probability 1/2, else uniform neighbor. Makes
//                    mixing well-defined on bipartite graphs (used by the
//                    Lemma 2.6 analysis and the mixing estimator).
//   * kMetropolisUniform -- Metropolis-Hastings targeting the UNIFORM
//                    distribution: propose a uniform neighbor u, accept with
//                    min(1, d(v)/d(u)), else stay. Node sampling without
//                    degree bias.
//
// A step may be a self-loop (kStaySlot); hop counts still advance, exactly
// like a multigraph self-loop. The Metropolis acceptance needs the proposed
// neighbor's degree, which nodes exchange in one setup round in a real
// network (each node tells its neighbors its degree); the simulator reads it
// from the shared Graph and documents the 1-round preamble here.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace drw {

enum class TransitionModel : std::uint8_t {
  kSimple = 0,
  kLazy = 1,
  kMetropolisUniform = 2,
};

/// Slot value meaning "the walk stays at the current node this step".
inline constexpr std::uint32_t kStaySlot = static_cast<std::uint32_t>(-2);

/// Samples one step of `model` at node v: returns a neighbor slot or
/// kStaySlot. Precondition: degree(v) > 0.
inline std::uint32_t sample_step(Rng& rng, const Graph& g, NodeId v,
                                 TransitionModel model) {
  const std::uint32_t degree = g.degree(v);
  switch (model) {
    case TransitionModel::kSimple:
      return static_cast<std::uint32_t>(rng.next_below(degree));
    case TransitionModel::kLazy:
      if (rng.next_bool(0.5)) return kStaySlot;
      return static_cast<std::uint32_t>(rng.next_below(degree));
    case TransitionModel::kMetropolisUniform: {
      const auto slot = static_cast<std::uint32_t>(rng.next_below(degree));
      const NodeId proposed = g.neighbor(v, slot);
      const double accept = static_cast<double>(degree) /
                            static_cast<double>(g.degree(proposed));
      return rng.next_bool(accept < 1.0 ? accept : 1.0) ? slot : kStaySlot;
    }
  }
  return kStaySlot;  // unreachable
}

}  // namespace drw
