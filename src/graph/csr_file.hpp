// On-disk binary CSR graphs (drw::csr): convert once, serve at mmap speed.
//
// Real edge-list datasets (SNAP et al.) are tens to hundreds of MB of text;
// re-parsing them on every server start makes warm restart (drw::resil)
// pointless. The ingestion pipeline here is:
//
//   text edge list --parse--> Graph --degree_relabel--> Graph + id map
//                                   --write_csr_file--> FILE.csr
//   FILE.csr --load_graph--> zero-copy Graph::view over an mmap
//
// Degree-ordered relabeling gives hot (high-degree) nodes dense low ids so
// their adjacency slices and per-node state pack into the same cache lines;
// the old<->new id map is stored in the file and returned to callers so
// request sources and reported walks stay in the user's id space.
//
// IMPORTANT: the text path of load_graph applies the SAME relabeling, so a
// converted CSR and its source text file produce bit-identical serving
// results (endpoints, paths, messages) at every thread count, partition,
// and mux width -- including when a corrupt CSR degrades to text re-parse.
//
// On-disk format (version 1, native-endian, single-host cache):
//
//   [0]  magic   "DRWCSR1\0"                (8 bytes)
//   [8]  version u32 | endian tag u32 (0x01020304; detects byte-swapped
//        files from a foreign host before any field is trusted)
//   [16] payload size u64
//   [24] CRC-32 (IEEE) of payload u32 | reserved u32
//   [32] payload:
//          u64 node_count, u64 adjacency_count, u64 flags (bit0:
//          relabeled), u64 reserved,
//          u64 offsets[node_count+1], u32 adjacency[adjacency_count],
//          u32 new_to_old[node_count]        (present iff flags bit0)
//
// All arrays are naturally aligned at their mmap offsets (the header and
// meta block are 32 bytes each; adjacency_count is even). Writes reuse the
// resil snapshot idiom: tmp + fsync + rename + fsync(dir), with failpoints
// "csr.write" (short write -> torn payload the CRC must catch) and
// "csr.commit" (kill window before the rename). A file failing ANY check
// (magic/version/endian/size/CRC/structure) is rejected with a reason and
// never dereferenced -- load_graph then degrades to re-parsing the text
// sibling (PATH minus its ".csr" suffix) when one exists.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/io.hpp"

namespace drw::csr {

inline constexpr std::uint32_t kCsrVersion = 1;

/// Deterministic degree-ordered relabeling: new id 0 is the highest-degree
/// node (ties broken by ascending old id). new_to_old[new] == old and
/// old_to_new[old] == new are inverse permutations of [0, n).
struct Relabeling {
  Graph graph;  ///< the same topology in the new id space
  std::vector<NodeId> new_to_old;
  std::vector<NodeId> old_to_new;
};
Relabeling degree_relabel(const Graph& g);

/// Atomically writes g (and its relabel map; pass an empty vector for an
/// unlabeled graph) to `path`. Throws std::runtime_error on IO failure.
void write_csr_file(const std::string& path, const Graph& g,
                    const std::vector<NodeId>& new_to_old);

/// A graph ready to serve, plus where it came from.
struct LoadedGraph {
  Graph graph;
  /// Id translation; empty when the mapping is the identity (a CSR file
  /// written without a relabel map). to_internal/to_user below handle both.
  std::vector<NodeId> new_to_old;
  std::vector<NodeId> old_to_new;
  bool from_csr = false;  ///< true: mmap'd binary; false: text parse
  std::string note;       ///< fallback reason when a CSR was rejected
  ParseStats stats;       ///< text-parse instrumentation (text path only)

  /// user id -> internal id (kInvalidNode if out of range).
  NodeId to_internal(NodeId user) const {
    if (old_to_new.empty()) return user < graph.node_count() ? user : kInvalidNode;
    return user < old_to_new.size() ? old_to_new[user] : kInvalidNode;
  }
  /// internal id -> user id.
  NodeId to_user(NodeId internal) const {
    if (new_to_old.empty()) return internal;
    return internal < new_to_old.size() ? new_to_old[internal] : internal;
  }
};

struct ReadOutcome {
  std::optional<LoadedGraph> loaded;  ///< empty on any validation failure
  std::string error;  ///< human-readable rejection reason when empty
};

/// mmaps and validates a CSR file. Never throws on bad content: every
/// rejection (missing file, bad magic, wrong version/endianness, size or
/// checksum mismatch, malformed structure) comes back as an error string.
/// Set DRW_CSR_VERIFY=0 to skip the CRC + adjacency bound scan on trusted
/// files (the structural offset checks that prevent UB always run).
ReadOutcome read_csr_file(const std::string& path);

/// The ingestion entry point used by the CLI and service plumbing:
///   * PATH with CSR magic (or a ".csr" suffix) -> read_csr_file; on
///     rejection, fall back to re-parsing the text sibling (PATH minus
///     ".csr") with identical relabeling, recording the reason in `note`;
///   * anything else -> bulk text parse (graph/io.hpp) + degree_relabel.
/// Throws std::runtime_error when nothing loadable exists,
/// std::invalid_argument on malformed text content.
/// `options` applies to the text-parse paths only (a binary CSR has no
/// headers to ignore).
LoadedGraph load_graph(const std::string& path, unsigned threads = 0,
                       EdgeListOptions options = {});

/// `drw convert`: text parse + relabel + write_csr_file. Returns the
/// converted graph (handy for summaries/tests).
LoadedGraph convert_edge_list(const std::string& text_path,
                              const std::string& csr_path,
                              unsigned threads = 0,
                              EdgeListOptions options = {});

}  // namespace drw::csr
