#include "graph/csr_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resil/failpoint.hpp"
#include "resil/snapshot.hpp"  // resil::crc32

namespace drw::csr {
namespace {

constexpr char kMagic[8] = {'D', 'R', 'W', 'C', 'S', 'R', '1', '\0'};
constexpr std::size_t kHeaderSize = 32;
constexpr std::size_t kMetaSize = 32;  // n, adjacency_count, flags, reserved
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::uint64_t kFlagRelabeled = 1ull;

bool ends_with_csr(const std::string& path) {
  return path.size() > 4 && path.compare(path.size() - 4, 4, ".csr") == 0;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

bool file_has_csr_magic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char buf[sizeof kMagic] = {};
  in.read(buf, sizeof buf);
  return in.gcount() == sizeof buf &&
         std::memcmp(buf, kMagic, sizeof kMagic) == 0;
}

/// Full-file verification (CRC + adjacency bound scan) is on unless
/// DRW_CSR_VERIFY=0; the structural offset checks always run.
bool verify_enabled() {
  const char* env = std::getenv("DRW_CSR_VERIFY");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

/// Budgeted write loop. `budget` caps payload bytes (the "csr.write"
/// short-write failpoint); on IO failure closes fd, unlinks tmp, throws.
void write_capped(int fd, const std::string& tmp, const void* data,
                  std::size_t size, std::uint64_t& budget) {
  const std::size_t want =
      static_cast<std::size_t>(std::min<std::uint64_t>(size, budget));
  budget -= want;
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t written = 0;
  while (written < want) {
    const ssize_t n = ::write(fd, p + written, want - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw std::runtime_error("csr: write to " + tmp + " failed: " +
                               std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
}

LoadedGraph load_text(const std::string& path, unsigned threads,
                      std::string note, EdgeListOptions options = {}) {
  ParseStats stats;
  Graph raw = read_edge_list_file(path, threads, &stats, options);
  obs::Span span(obs::Name::kIngestRelabel, obs::kPidIngest, 0);
  Relabeling rel = degree_relabel(raw);
  LoadedGraph out;
  out.graph = std::move(rel.graph);
  out.new_to_old = std::move(rel.new_to_old);
  out.old_to_new = std::move(rel.old_to_new);
  out.from_csr = false;
  out.note = std::move(note);
  out.stats = stats;
  return out;
}

}  // namespace

Relabeling degree_relabel(const Graph& g) {
  const std::size_t n = g.node_count();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  // Degree descending, old id ascending: a total order, so the permutation
  // (and everything downstream of it) is deterministic.
  std::sort(order.begin(), order.end(), [&g](NodeId a, NodeId b) {
    const std::uint32_t da = g.degree(a);
    const std::uint32_t db = g.degree(b);
    return da != db ? da > db : a < b;
  });
  std::vector<NodeId> old_to_new(n);
  for (std::size_t i = 0; i < n; ++i) {
    old_to_new[order[i]] = static_cast<NodeId>(i);
  }
  std::vector<std::uint64_t> offsets(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    offsets[i + 1] = offsets[i] + g.degree(order[i]);
  }
  std::vector<NodeId> adjacency(offsets[n]);
  for (std::size_t i = 0; i < n; ++i) {
    const auto nbrs = g.neighbors(order[i]);
    NodeId* dst = adjacency.data() + offsets[i];
    for (std::size_t j = 0; j < nbrs.size(); ++j) dst[j] = old_to_new[nbrs[j]];
    std::sort(dst, dst + nbrs.size());
  }
  Relabeling rel;
  rel.graph = Graph::from_csr(std::move(offsets), std::move(adjacency));
  rel.new_to_old = std::move(order);
  rel.old_to_new = std::move(old_to_new);
  return rel;
}

void write_csr_file(const std::string& path, const Graph& g,
                    const std::vector<NodeId>& new_to_old) {
  obs::Span span(obs::Name::kIngestWrite, obs::kPidIngest, 0);
  if (g.node_count() == 0) {
    throw std::invalid_argument("csr: refusing to write an empty graph");
  }
  if (!new_to_old.empty() && new_to_old.size() != g.node_count()) {
    throw std::invalid_argument("csr: relabel map size mismatch");
  }
  const std::uint64_t n = g.node_count();
  const std::uint64_t ac = g.adjacency().size();
  const std::uint64_t flags = new_to_old.empty() ? 0 : kFlagRelabeled;
  const std::uint64_t meta[4] = {n, ac, flags, 0};
  const std::uint64_t payload_size =
      kMetaSize + (n + 1) * 8 + ac * 4 + (flags ? n * 4 : 0);

  // CRC chains across the payload pieces (crc32's seed parameter), so the
  // arrays are never copied into a contiguous staging buffer.
  std::uint32_t crc = resil::crc32(meta, sizeof meta);
  crc = resil::crc32(g.offsets().data(), (n + 1) * 8, crc);
  crc = resil::crc32(g.adjacency().data(), ac * 4, crc);
  if (flags != 0) crc = resil::crc32(new_to_old.data(), n * 4, crc);

  std::uint8_t header[kHeaderSize] = {};
  std::memcpy(header, kMagic, sizeof kMagic);
  const std::uint32_t version = kCsrVersion;
  std::memcpy(header + 8, &version, 4);
  std::memcpy(header + 12, &kEndianTag, 4);
  std::memcpy(header + 16, &payload_size, 8);
  std::memcpy(header + 24, &crc, 4);

  // A short_write arming truncates the payload AFTER the header promised
  // the full size: the torn file renames into place and the reader's
  // size/CRC validation must reject it.
  std::uint64_t budget = ~std::uint64_t{0};
  if (resil::failpoint("csr.write")) budget = payload_size / 2;

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("csr: cannot open " + tmp + ": " +
                             std::strerror(errno));
  }
  std::uint64_t header_budget = ~std::uint64_t{0};
  write_capped(fd, tmp, header, sizeof header, header_budget);
  write_capped(fd, tmp, meta, sizeof meta, budget);
  write_capped(fd, tmp, g.offsets().data(), (n + 1) * 8, budget);
  write_capped(fd, tmp, g.adjacency().data(), ac * 4, budget);
  if (flags != 0) write_capped(fd, tmp, new_to_old.data(), n * 4, budget);
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("csr: fsync/close of " + tmp + " failed");
  }
  // The kill-mid-convert window: a crash here leaves only the stray .tmp,
  // never a half-renamed cache file.
  resil::failpoint("csr.commit");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw std::runtime_error("csr: rename to " + path + " failed: " +
                             std::strerror(err));
  }
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

ReadOutcome read_csr_file(const std::string& path) {
  obs::Span span(obs::Name::kIngestLoad, obs::kPidIngest, 0);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return {std::nullopt,
            "cannot open " + path + ": " + std::strerror(errno)};
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return {std::nullopt, "cannot stat " + path + ": " + std::strerror(err)};
  }
  const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  if (size < kHeaderSize) {
    ::close(fd);
    return {std::nullopt,
            "truncated header (" + std::to_string(size) + " bytes)"};
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int mmap_err = errno;
  ::close(fd);  // the mapping outlives the descriptor
  if (base == MAP_FAILED) {
    return {std::nullopt, "mmap of " + path + " failed: " +
                              std::strerror(mmap_err)};
  }
  std::shared_ptr<const void> mapping(
      base, [size](const void* b) { ::munmap(const_cast<void*>(b), size); });

  const auto* bytes = static_cast<const std::uint8_t*>(base);
  if (std::memcmp(bytes, kMagic, sizeof kMagic) != 0) {
    return {std::nullopt, "bad magic (not a drw CSR file)"};
  }
  std::uint32_t version = 0;
  std::memcpy(&version, bytes + 8, 4);
  if (version != kCsrVersion) {
    return {std::nullopt, "unsupported CSR version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(kCsrVersion) + ")"};
  }
  std::uint32_t endian = 0;
  std::memcpy(&endian, bytes + 12, 4);
  if (endian != kEndianTag) {
    return {std::nullopt,
            "wrong endianness (CSR file written on an incompatible host)"};
  }
  std::uint64_t payload_size = 0;
  std::memcpy(&payload_size, bytes + 16, 8);
  if (payload_size != size - kHeaderSize) {
    return {std::nullopt,
            "payload size mismatch (header says " +
                std::to_string(payload_size) + ", file carries " +
                std::to_string(size - kHeaderSize) + ")"};
  }
  const bool verify = verify_enabled();
  if (verify) {
    std::uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, bytes + 24, 4);
    const std::uint32_t actual =
        resil::crc32(bytes + kHeaderSize, payload_size);
    if (stored_crc != actual) {
      return {std::nullopt, "checksum mismatch (torn or corrupt CSR file)"};
    }
  }

  // Structural validation: nothing below may be dereferenced out of bounds
  // even if the CRC was skipped or forged.
  const std::uint8_t* payload = bytes + kHeaderSize;
  if (payload_size < kMetaSize) {
    return {std::nullopt, "malformed CSR payload: missing meta block"};
  }
  std::uint64_t meta[4];
  std::memcpy(meta, payload, sizeof meta);
  const std::uint64_t n = meta[0];
  const std::uint64_t ac = meta[1];
  const std::uint64_t flags = meta[2];
  if (n == 0) {
    return {std::nullopt, "malformed CSR payload: zero node count"};
  }
  if (n > static_cast<std::uint64_t>(kInvalidNode)) {
    return {std::nullopt,
            "malformed CSR payload: node count overflows the 32-bit id space"};
  }
  if ((flags & ~kFlagRelabeled) != 0) {
    return {std::nullopt, "malformed CSR payload: unknown flags"};
  }
  if (ac % 2 != 0 || ac > payload_size / 4) {
    return {std::nullopt, "malformed CSR payload: bad adjacency count"};
  }
  const std::uint64_t expected =
      kMetaSize + (n + 1) * 8 + ac * 4 +
      ((flags & kFlagRelabeled) != 0 ? n * 4 : 0);
  if (payload_size != expected) {
    return {std::nullopt,
            "malformed CSR payload: size inconsistent with node/edge counts"};
  }
  const auto* offsets =
      reinterpret_cast<const std::uint64_t*>(payload + kMetaSize);
  const auto* adjacency =
      reinterpret_cast<const NodeId*>(payload + kMetaSize + (n + 1) * 8);
  const NodeId* relabel_map =
      (flags & kFlagRelabeled) != 0
          ? reinterpret_cast<const NodeId*>(payload + kMetaSize +
                                            (n + 1) * 8 + ac * 4)
          : nullptr;
  if (offsets[0] != 0 || offsets[n] != ac) {
    return {std::nullopt,
            "malformed CSR payload: offsets do not frame adjacency"};
  }
  for (std::uint64_t v = 1; v <= n; ++v) {
    if (offsets[v] < offsets[v - 1]) {
      return {std::nullopt, "malformed CSR payload: offsets not monotone"};
    }
    if (offsets[v] - offsets[v - 1] > 0xFFFFFFFFull) {
      return {std::nullopt,
              "malformed CSR payload: node degree overflows 32 bits"};
    }
  }
  if (verify) {
    for (std::uint64_t e = 0; e < ac; ++e) {
      if (adjacency[e] >= n) {
        return {std::nullopt,
                "malformed CSR payload: adjacency target out of range"};
      }
    }
  }

  LoadedGraph out;
  if (relabel_map != nullptr) {
    out.new_to_old.assign(relabel_map, relabel_map + n);
    out.old_to_new.assign(n, kInvalidNode);
    for (std::uint64_t i = 0; i < n; ++i) {
      const NodeId old = out.new_to_old[i];
      if (old >= n || out.old_to_new[old] != kInvalidNode) {
        return {std::nullopt,
                "malformed CSR payload: relabel map is not a permutation"};
      }
      out.old_to_new[old] = static_cast<NodeId>(i);
    }
  }
  out.graph = Graph::view({offsets, static_cast<std::size_t>(n + 1)},
                          {adjacency, static_cast<std::size_t>(ac)},
                          std::move(mapping));
  out.from_csr = true;

  auto& reg = obs::Registry::global();
  if (reg.enabled()) {
    reg.counter("ingest.csr_bytes").add(size);
    reg.counter("ingest.csr_loads").add(1);
  }
  return {std::move(out), ""};
}

LoadedGraph load_graph(const std::string& path, unsigned threads,
                       EdgeListOptions options) {
  const bool looks_csr = ends_with_csr(path) || file_has_csr_magic(path);
  if (!looks_csr) return load_text(path, threads, "", options);
  ReadOutcome out = read_csr_file(path);
  if (out.loaded.has_value()) return std::move(*out.loaded);
  if (ends_with_csr(path)) {
    // Degrade to the text sibling the cache was converted from: PATH minus
    // ".csr". The text path relabels identically, so the fallback serves
    // bit-identical results to what the valid CSR would have.
    const std::string sibling = path.substr(0, path.size() - 4);
    if (file_exists(sibling)) {
      return load_text(sibling, threads,
                       "csr rejected (" + out.error + "); re-parsed " +
                           sibling,
                       options);
    }
  }
  throw std::runtime_error("cannot load graph " + path + ": " + out.error +
                           " (no text fallback)");
}

LoadedGraph convert_edge_list(const std::string& text_path,
                              const std::string& csr_path, unsigned threads,
                              EdgeListOptions options) {
  LoadedGraph loaded = load_graph(text_path, threads, options);
  write_csr_file(csr_path, loaded.graph, loaded.new_to_old);
  return loaded;
}

}  // namespace drw::csr
