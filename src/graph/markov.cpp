#include "graph/markov.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace drw {

MarkovOracle::MarkovOracle(const Graph& g, TransitionModel model)
    : graph_(&g), model_(model) {
  if (g.node_count() == 0) throw std::invalid_argument("MarkovOracle: empty");
  if (g.min_degree() == 0) {
    throw std::invalid_argument("MarkovOracle: isolated node");
  }
}

std::vector<double> MarkovOracle::step(const std::vector<double>& p) const {
  const Graph& g = *graph_;
  assert(p.size() == g.node_count());
  std::vector<double> next(g.node_count(), 0.0);
  switch (model_) {
    case TransitionModel::kSimple:
    case TransitionModel::kLazy:
      for (NodeId v = 0; v < g.node_count(); ++v) {
        const double mass = p[v];
        if (mass == 0.0) continue;
        const double share = mass / g.degree(v);
        for (NodeId u : g.neighbors(v)) next[u] += share;
      }
      if (model_ == TransitionModel::kLazy) {
        for (NodeId v = 0; v < g.node_count(); ++v) {
          next[v] = 0.5 * next[v] + 0.5 * p[v];
        }
      }
      break;
    case TransitionModel::kMetropolisUniform:
      // P(v,u) = min(1/d(v), 1/d(u)) for u ~ v; self-loop remainder.
      for (NodeId v = 0; v < g.node_count(); ++v) {
        const double mass = p[v];
        if (mass == 0.0) continue;
        double moved = 0.0;
        for (NodeId u : g.neighbors(v)) {
          const double prob =
              1.0 / std::max<double>(g.degree(v), g.degree(u));
          next[u] += mass * prob;
          moved += prob;
        }
        next[v] += mass * (1.0 - moved);
      }
      break;
  }
  return next;
}

std::vector<double> MarkovOracle::distribution_after(
    NodeId source, std::uint64_t steps) const {
  std::vector<double> p(graph_->node_count(), 0.0);
  p[source] = 1.0;
  for (std::uint64_t t = 0; t < steps; ++t) p = step(p);
  return p;
}

std::vector<double> MarkovOracle::stationary() const {
  const Graph& g = *graph_;
  std::vector<double> pi(g.node_count());
  if (model_ == TransitionModel::kMetropolisUniform) {
    const double uniform = 1.0 / static_cast<double>(g.node_count());
    for (auto& value : pi) value = uniform;
    return pi;
  }
  const double denom = 2.0 * static_cast<double>(g.edge_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    pi[v] = static_cast<double>(g.degree(v)) / denom;
  }
  return pi;
}

double MarkovOracle::l1_to_stationary(NodeId source,
                                      std::uint64_t steps) const {
  const auto p = distribution_after(source, steps);
  const auto pi = stationary();
  return l1_distance(p, pi);
}

std::optional<std::uint64_t> MarkovOracle::mixing_time(
    NodeId source, double eps, std::uint64_t max_steps) const {
  // Walk the distribution forward once, testing at every step; the doubling
  // trick is unnecessary centrally because each step costs O(m).
  std::vector<double> p(graph_->node_count(), 0.0);
  p[source] = 1.0;
  const auto pi = stationary();
  for (std::uint64_t t = 0; t <= max_steps; ++t) {
    if (l1_distance(p, pi) < eps) return t;
    p = step(p);
  }
  return std::nullopt;
}

std::optional<std::uint64_t> MarkovOracle::mixing_time_standard(
    NodeId source, std::uint64_t max_steps) const {
  return mixing_time(source, 1.0 / (2.0 * std::exp(1.0)), max_steps);
}

double MarkovOracle::second_eigenvalue(std::size_t iterations) const {
  const Graph& g = *graph_;
  const std::size_t n = g.node_count();
  const auto pi = stationary();

  // Power iteration on P restricted to the complement of the top eigenvector.
  // For the reversible chain, eigenvectors are orthogonal under the inner
  // product <f, h>_pi = sum_v pi(v) f(v) h(v), and the top right-eigenvector
  // is the all-ones vector. We iterate f <- P f (note: *right* multiplication
  // uses the same neighbor-averaging form f'(v) = avg over neighbors) and
  // project out the mean after each step.
  // Deterministic but unstructured start vector (a structured start such as
  // alternating +-1 can be an exact eigenvector, e.g. on even cycles, and
  // trap the iteration in one eigenspace).
  std::vector<double> f(n);
  std::uint64_t seed = 0x2545f4914f6cdd1dULL;
  for (std::size_t v = 0; v < n; ++v) {
    f[v] = static_cast<double>(splitmix64(seed) >> 11) * 0x1.0p-53 - 0.5;
  }
  auto project_and_normalize = [&](std::vector<double>& x) -> double {
    double mean = 0.0;
    for (std::size_t v = 0; v < n; ++v) mean += pi[v] * x[v];
    for (auto& value : x) value -= mean;
    double norm = 0.0;
    for (std::size_t v = 0; v < n; ++v) norm += pi[v] * x[v] * x[v];
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (auto& value : x) value /= norm;
    }
    return norm;
  };
  project_and_normalize(f);

  double eig = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    std::vector<double> next = right_multiply(f);
    const double norm = project_and_normalize(next);
    f = std::move(next);
    eig = norm;
    // |norm| converges to |lambda_2| since projection removes lambda_1 = 1.
  }
  return eig;
}

std::vector<double> MarkovOracle::right_multiply(
    const std::vector<double>& f) const {
  // f'(v) = sum_u P(v, u) f(u); P is row-stochastic per `model_`.
  const Graph& g = *graph_;
  const std::size_t n = g.node_count();
  std::vector<double> next(n, 0.0);
  switch (model_) {
    case TransitionModel::kSimple:
    case TransitionModel::kLazy:
      for (NodeId v = 0; v < n; ++v) {
        double sum = 0.0;
        for (NodeId u : g.neighbors(v)) sum += f[u];
        next[v] = sum / g.degree(v);
      }
      if (model_ == TransitionModel::kLazy) {
        for (std::size_t v = 0; v < n; ++v) {
          next[v] = 0.5 * next[v] + 0.5 * f[v];
        }
      }
      break;
    case TransitionModel::kMetropolisUniform:
      for (NodeId v = 0; v < n; ++v) {
        double sum = 0.0;
        double moved = 0.0;
        for (NodeId u : g.neighbors(v)) {
          const double prob =
              1.0 / std::max<double>(g.degree(v), g.degree(u));
          sum += prob * f[u];
          moved += prob;
        }
        next[v] = sum + (1.0 - moved) * f[v];
      }
      break;
  }
  return next;
}

MarkovOracle::SpectralBounds MarkovOracle::spectral_bounds() const {
  SpectralBounds out;
  out.lambda2 = second_eigenvalue();
  out.gap = 1.0 - out.lambda2;
  const double n = static_cast<double>(graph_->node_count());
  if (out.gap > 0.0) {
    out.tau_lower = 1.0 / out.gap;
    out.tau_upper = std::log(n) / out.gap;
  }
  return out;
}

}  // namespace drw
