// Immutable undirected graph in compressed-sparse-row form.
//
// This is the topology substrate for the CONGEST simulator: the paper's model
// (Section 1.1) is an undirected, unweighted, connected n-node graph where
// node v knows only its own ID and its neighbors' IDs. Graph is intentionally
// simple and cache-friendly: all algorithms in this repository traverse
// neighbor spans in tight loops.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace drw {

using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

class Graph {
 public:
  Graph() = default;

  std::size_t node_count() const noexcept { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t edge_count() const noexcept { return adjacency_.size() / 2; }

  std::uint32_t degree(NodeId v) const noexcept {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbors of v, sorted ascending.
  std::span<const NodeId> neighbors(NodeId v) const noexcept {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// The i-th neighbor of v (0-based); used for uniform neighbor sampling.
  NodeId neighbor(NodeId v, std::uint32_t i) const noexcept {
    return adjacency_[offsets_[v] + i];
  }

  bool has_edge(NodeId u, NodeId v) const noexcept;

  /// Index of the directed edge (v -> v's slot-th neighbor) in a flat array
  /// of size 2m; used by the CONGEST simulator for per-edge queues.
  std::size_t directed_edge_index(NodeId v, std::uint32_t slot) const noexcept {
    return offsets_[v] + slot;
  }
  std::size_t directed_edge_count() const noexcept { return adjacency_.size(); }

  /// Target node of a directed edge index (the adjacency entry it points
  /// at); O(1), used by the simulator's transmit phase.
  NodeId directed_edge_target(std::size_t eid) const noexcept {
    return adjacency_[eid];
  }

  /// Slot of neighbor `u` in v's adjacency list; degree(v) if not adjacent.
  std::uint32_t slot_of(NodeId v, NodeId u) const noexcept;

  /// Maximum and minimum degree over all nodes (0 for the empty graph).
  std::uint32_t max_degree() const noexcept;
  std::uint32_t min_degree() const noexcept;

  /// Human-readable one-line summary ("n=.. m=.. degmin=.. degmax=..").
  std::string summary() const;

 private:
  friend class GraphBuilder;
  std::vector<std::size_t> offsets_;   // size n+1
  std::vector<NodeId> adjacency_;      // size 2m, sorted within each node
};

/// Accumulates undirected edges, deduplicates, and produces a Graph.
/// Self-loops and parallel edges are rejected (the paper's model is simple);
/// use the weighted multigraph in lowerbound/ for the Theorem 3.7 reduction.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t node_count);

  /// Adds edge {u, v}. Duplicate additions are coalesced at build time.
  /// Throws std::invalid_argument on self-loops or out-of-range endpoints.
  void add_edge(NodeId u, NodeId v);

  std::size_t node_count() const noexcept { return node_count_; }

  /// Builds the CSR graph. The builder can be reused afterwards.
  Graph build() const;

 private:
  std::size_t node_count_ = 0;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace drw
