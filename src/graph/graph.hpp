// Immutable undirected graph in compressed-sparse-row form.
//
// This is the topology substrate for the CONGEST simulator: the paper's model
// (Section 1.1) is an undirected, unweighted, connected n-node graph where
// node v knows only its own ID and its neighbors' IDs. Graph is intentionally
// simple and cache-friendly: all algorithms in this repository traverse
// neighbor spans in tight loops.
//
// Storage modes. A Graph either OWNS its CSR arrays (the historical layout:
// built by GraphBuilder or adopted via from_csr) or is a non-owning VIEW over
// externally managed memory -- typically an mmap'ed on-disk CSR file (see
// graph/csr_file.hpp), where `backing` keeps the mapping alive for as long
// as any copy of the view exists. Every accessor reads through the same raw
// pointers in both modes, so the mode is invisible to algorithms and to the
// simulator; only construction and lifetime differ.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace drw {

using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

class Graph {
 public:
  Graph() = default;
  Graph(const Graph& other) { assign(other); }
  Graph& operator=(const Graph& other) {
    if (this != &other) assign(other);
    return *this;
  }
  // Moving a vector transfers its heap buffer, so pointers into an owned
  // store stay valid across the move; views carry their backing handle.
  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;

  /// Adopts already-built CSR arrays (offsets.size() == n+1, adjacency
  /// sorted within each node, each undirected edge present twice). The fast
  /// ingestion paths use this to skip GraphBuilder's comparison sort.
  static Graph from_csr(std::vector<std::uint64_t> offsets,
                        std::vector<NodeId> adjacency);

  /// A zero-copy view over externally owned CSR arrays. `backing` is held
  /// for the lifetime of the view (and every copy of it) -- pass the mmap
  /// handle so the mapping outlives all readers; pass nullptr only when the
  /// arrays are guaranteed to outlive the view by other means (tests).
  static Graph view(std::span<const std::uint64_t> offsets,
                    std::span<const NodeId> adjacency,
                    std::shared_ptr<const void> backing);

  /// True when this Graph reads external memory it does not own.
  bool is_view() const noexcept { return node_count_ != 0 && offsets_store_.empty(); }

  std::size_t node_count() const noexcept { return node_count_; }
  std::size_t edge_count() const noexcept { return adjacency_count_ / 2; }

  std::uint32_t degree(NodeId v) const noexcept {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbors of v, sorted ascending.
  std::span<const NodeId> neighbors(NodeId v) const noexcept {
    return {adjacency_ + offsets_[v], adjacency_ + offsets_[v + 1]};
  }

  /// The i-th neighbor of v (0-based); used for uniform neighbor sampling.
  NodeId neighbor(NodeId v, std::uint32_t i) const noexcept {
    return adjacency_[offsets_[v] + i];
  }

  bool has_edge(NodeId u, NodeId v) const noexcept;

  /// Index of the directed edge (v -> v's slot-th neighbor) in a flat array
  /// of size 2m; used by the CONGEST simulator for per-edge queues.
  std::size_t directed_edge_index(NodeId v, std::uint32_t slot) const noexcept {
    return offsets_[v] + slot;
  }
  std::size_t directed_edge_count() const noexcept { return adjacency_count_; }

  /// Target node of a directed edge index (the adjacency entry it points
  /// at); O(1), used by the simulator's transmit phase.
  NodeId directed_edge_target(std::size_t eid) const noexcept {
    return adjacency_[eid];
  }

  /// Slot of neighbor `u` in v's adjacency list; degree(v) if not adjacent.
  std::uint32_t slot_of(NodeId v, NodeId u) const noexcept;

  /// Maximum and minimum degree over all nodes (0 for the empty graph).
  std::uint32_t max_degree() const noexcept;
  std::uint32_t min_degree() const noexcept;

  /// Raw CSR arrays (offsets: n+1 entries; adjacency: 2m entries). Exposed
  /// for serialization (graph/csr_file.cpp) and relabeling.
  std::span<const std::uint64_t> offsets() const noexcept {
    return {offsets_, node_count_ == 0 ? 0 : node_count_ + 1};
  }
  std::span<const NodeId> adjacency() const noexcept {
    return {adjacency_, adjacency_count_};
  }

  /// Human-readable one-line summary ("n=.. m=.. degmin=.. degmax=..").
  std::string summary() const;

 private:
  friend class GraphBuilder;

  /// Points the accessor pointers at the owned stores.
  void finalize_owned();
  void assign(const Graph& other);

  // Owned mode: the arrays live here and the pointers below alias them.
  std::vector<std::uint64_t> offsets_store_;
  std::vector<NodeId> adjacency_store_;
  // View mode: the pointers alias external memory kept alive by backing_.
  std::shared_ptr<const void> backing_;

  const std::uint64_t* offsets_ = nullptr;  // n+1 entries
  const NodeId* adjacency_ = nullptr;       // 2m entries, sorted per node
  std::size_t node_count_ = 0;
  std::size_t adjacency_count_ = 0;
};

/// Accumulates undirected edges, deduplicates, and produces a Graph.
/// Self-loops and parallel edges are rejected (the paper's model is simple);
/// use the weighted multigraph in lowerbound/ for the Theorem 3.7 reduction.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t node_count);

  /// Adds edge {u, v}. Duplicate additions are coalesced at build time.
  /// Throws std::invalid_argument on self-loops or out-of-range endpoints.
  void add_edge(NodeId u, NodeId v);

  std::size_t node_count() const noexcept { return node_count_; }

  /// Builds the CSR graph. The builder can be reused afterwards.
  Graph build() const;

 private:
  std::size_t node_count_ = 0;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace drw
