// Spanning-tree utilities for validating the RST application (Section 4.1):
// Kirchhoff's matrix-tree count gives the denominator for the uniformity
// chi-square test, and the canonical encoding lets tests histogram which
// spanning tree a run produced.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace drw {

/// An undirected spanning tree as a sorted list of (min, max) edges.
struct SpanningTree {
  std::vector<std::pair<NodeId, NodeId>> edges;

  /// Canonical string key ("u-v,u-v,...") for histogramming.
  std::string canonical_key() const;
};

/// Builds a SpanningTree from a parent array (parent[root] == root).
/// Throws if the parent array does not describe a tree on all nodes.
SpanningTree tree_from_parents(const Graph& g,
                               const std::vector<NodeId>& parent);

/// True iff `tree` is a spanning tree of g (n-1 edges, connected, acyclic,
/// every edge present in g).
bool is_spanning_tree(const Graph& g, const SpanningTree& tree);

/// Number of spanning trees by the matrix-tree theorem (determinant of the
/// reduced Laplacian). Exact to double precision; throws if n < 2.
double count_spanning_trees(const Graph& g);

}  // namespace drw
