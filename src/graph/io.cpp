#include "graph/io.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resil/failpoint.hpp"

namespace drw {
namespace {

// Node ids must fit a NodeId with kInvalidNode reserved as a sentinel.
constexpr unsigned long long kMaxId =
    static_cast<unsigned long long>(kInvalidNode) - 1;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Horizontal whitespace, the set istream extraction skips within a line
// (the buffer parsers never cross '\n'; lines are split beforehand).
bool is_hspace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

const char* skip_hspace(const char* p, const char* end) {
  while (p < end && is_hspace(*p)) ++p;
  return p;
}

struct Token {
  bool ok = false;  ///< extraction succeeded (>= 1 digit, fits long long)
  bool negative = false;
  unsigned long long value = 0;
  const char* next = nullptr;
};

// Mirrors istream integer extraction over [p, end): optional sign, then
// decimal digits, stopping at the first non-digit. Values outside long
// long range fail extraction (stream semantics), they do not saturate.
Token parse_int(const char* p, const char* end) {
  Token t;
  t.next = p;
  const char* q = p;
  bool neg = false;
  if (q < end && (*q == '+' || *q == '-')) {
    neg = (*q == '-');
    ++q;
  }
  if (q == end || *q < '0' || *q > '9') return t;  // no digits: fail
  bool overflow = false;
  unsigned long long v = 0;
  while (q < end && *q >= '0' && *q <= '9') {
    const unsigned d = static_cast<unsigned>(*q - '0');
    if (v > (~0ull - d) / 10) {
      overflow = true;
    } else {
      v = v * 10 + d;
    }
    ++q;
  }
  t.next = q;
  const unsigned long long limit =
      neg ? (1ull << 63) : (1ull << 63) - 1;  // long long range
  if (overflow || v > limit) return t;
  t.ok = true;
  t.negative = neg;
  t.value = v;
  return t;
}

enum class ErrCode : std::uint8_t {
  kNone,
  kExpectedTwo,
  kNegative,
  kOverflow,
  kSelfLoop,
  kHeaderOverflow,
};

[[noreturn]] void throw_line_error(std::size_t line, ErrCode code,
                                   unsigned long long bad_value) {
  const std::string at = "edge list line " + std::to_string(line) + ": ";
  switch (code) {
    case ErrCode::kExpectedTwo:
      throw std::invalid_argument(at + "expected two node IDs");
    case ErrCode::kNegative:
      throw std::invalid_argument(at + "negative node ID");
    case ErrCode::kOverflow:
      throw std::invalid_argument(at + "node ID " + std::to_string(bad_value) +
                                  " overflows the 32-bit node id space");
    case ErrCode::kSelfLoop:
      throw std::invalid_argument(at + "self-loop");
    case ErrCode::kHeaderOverflow:
      throw std::invalid_argument(at + "node count " +
                                  std::to_string(bad_value) +
                                  " overflows the 32-bit node id space");
    case ErrCode::kNone:
      break;
  }
  throw std::logic_error("edge list: unknown parse error");
}

[[noreturn]] void throw_header_conflict(std::size_t line,
                                        std::uint64_t earlier) {
  throw std::invalid_argument(
      "edge list line " + std::to_string(line) +
      ": duplicate '# nodes' header conflicts with earlier value " +
      std::to_string(earlier));
}

struct LineOut {
  enum Kind : std::uint8_t { kSkip, kEdge, kHeader, kError } kind = kSkip;
  ErrCode code = ErrCode::kNone;
  NodeId u = 0;
  NodeId v = 0;
  std::uint64_t value = 0;  ///< header count, or the offending id on error
};

/// Parses one line [p, end) (no '\n' inside). Reproduces the historical
/// getline + istringstream semantics exactly: '#'/'%' in column one makes
/// a comment ("# nodes N" headers included); an unparseable FIRST token
/// skips the line (stream-extraction-failure compatibility); a missing or
/// unparseable second token, a negative id, an id beyond kMaxId, and a
/// self-loop are line errors, detected in that order.
LineOut parse_line(const char* p, const char* end) {
  LineOut out;
  if (p < end && (*p == '#' || *p == '%')) {
    const char* q = skip_hspace(p + 1, end);
    if (end - q >= 5 && std::memcmp(q, "nodes", 5) == 0 &&
        (q + 5 == end || is_hspace(q[5]))) {
      // "# nodes N": a failed count parse reads as 0 (stream semantics).
      const Token n = parse_int(skip_hspace(q + 5, end), end);
      out.kind = LineOut::kHeader;
      out.value = (n.ok && !n.negative) ? n.value : 0;
      if (out.value > kMaxId + 1) {
        out.kind = LineOut::kError;
        out.code = ErrCode::kHeaderOverflow;
      }
    }
    return out;  // plain comment: kSkip
  }
  const char* q = skip_hspace(p, end);
  if (q == end) return out;  // blank line
  const Token a = parse_int(q, end);
  if (!a.ok) return out;  // unparseable first token: skipped, like a blank
  const Token b = parse_int(skip_hspace(a.next, end), end);
  if (!b.ok) {
    out.kind = LineOut::kError;
    out.code = ErrCode::kExpectedTwo;
    return out;
  }
  if ((a.negative && a.value != 0) || (b.negative && b.value != 0)) {
    out.kind = LineOut::kError;
    out.code = ErrCode::kNegative;
    return out;
  }
  if (a.value > kMaxId || b.value > kMaxId) {
    out.kind = LineOut::kError;
    out.code = ErrCode::kOverflow;
    out.value = std::max(a.value, b.value);
    return out;
  }
  if (a.value == b.value) {
    out.kind = LineOut::kError;
    out.code = ErrCode::kSelfLoop;
    return out;
  }
  out.kind = LineOut::kEdge;
  out.u = static_cast<NodeId>(a.value);
  out.v = static_cast<NodeId>(b.value);
  return out;
}

/// EdgeListOptions::no_header post-filter: headers (and the overflow
/// errors only a header can produce) become plain comments.
LineOut apply_options(LineOut out, const EdgeListOptions& options) {
  if (options.no_header &&
      (out.kind == LineOut::kHeader ||
       (out.kind == LineOut::kError &&
        out.code == ErrCode::kHeaderOverflow))) {
    return LineOut{};
  }
  return out;
}

/// Calls fn(line_begin, line_end) for every physical line of [begin, end);
/// a trailing line without '\n' still counts (getline compatibility).
template <typename Fn>
void for_each_line(const char* begin, const char* end, Fn&& fn) {
  const char* p = begin;
  while (p < end) {
    const char* nl =
        static_cast<const char*>(std::memchr(p, '\n', std::size_t(end - p)));
    const char* le = nl ? nl : end;
    if (!fn(p, le)) return;
    p = nl ? nl + 1 : end;
  }
}

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("DRW_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Claims job indices [0, jobs) across up to `threads` workers.
template <typename Fn>
void run_workers(unsigned threads, std::size_t jobs, Fn&& fn) {
  if (jobs == 0) return;
  const unsigned width =
      static_cast<unsigned>(std::min<std::size_t>(threads, jobs));
  if (width <= 1) {
    for (std::size_t j = 0; j < jobs; ++j) fn(j);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(width);
  for (unsigned i = 0; i < width; ++i) {
    pool.emplace_back([&] {
      for (std::size_t j; (j = next.fetch_add(1)) < jobs;) fn(j);
    });
  }
  for (auto& th : pool) th.join();
}

/// CSR assembly shared by both parsers: counting scatter into per-node
/// slices, then per-node sort + dedup (parallel over edge-balanced node
/// ranges). Produces exactly the arrays GraphBuilder::build() would --
/// sorted unique adjacency with each undirected edge present twice --
/// without the global comparison sort, and independent of thread count.
Graph assemble_csr(std::size_t n,
                   const std::vector<std::vector<std::pair<NodeId, NodeId>>>&
                       parts,
                   unsigned threads) {
  std::vector<std::uint64_t> offsets(n + 1, 0);
  std::size_t raw = 0;
  for (const auto& part : parts) {
    raw += part.size();
    for (const auto& [a, b] : part) {
      ++offsets[a + 1];
      ++offsets[b + 1];
    }
  }
  for (std::size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];

  std::vector<NodeId> adjacency(raw * 2);
  {
    std::vector<std::uint64_t> cursor(offsets.begin(),
                                      offsets.empty() ? offsets.end()
                                                      : offsets.end() - 1);
    for (const auto& part : parts) {
      for (const auto& [a, b] : part) {
        adjacency[cursor[a]++] = b;
        adjacency[cursor[b]++] = a;
      }
    }
  }

  // Edge-balanced node ranges so one power-law hub cannot serialize the
  // sort pass; each worker touches disjoint slices.
  std::vector<std::uint32_t> deg(n, 0);
  const std::size_t want_ranges = std::size_t{threads} * 4;
  std::vector<std::pair<NodeId, NodeId>> ranges;
  {
    NodeId start = 0;
    for (std::size_t r = 0; r < want_ranges && start < n; ++r) {
      const std::uint64_t target =
          (offsets[n] * (r + 1) + want_ranges - 1) / want_ranges;
      NodeId stop = static_cast<NodeId>(
          std::upper_bound(offsets.begin() + start + 1, offsets.end(),
                           target == 0 ? 0 : target - 1) -
          offsets.begin() - 1);
      stop = std::max<NodeId>(stop, start + 1);
      stop = static_cast<NodeId>(std::min<std::size_t>(stop, n));
      ranges.emplace_back(start, stop);
      start = stop;
    }
    if (start < n) ranges.emplace_back(start, static_cast<NodeId>(n));
  }
  run_workers(threads, ranges.size(), [&](std::size_t r) {
    const auto [lo, hi] = ranges[r];
    for (NodeId v = lo; v < hi; ++v) {
      NodeId* first = adjacency.data() + offsets[v];
      NodeId* last = adjacency.data() + offsets[v + 1];
      std::sort(first, last);
      deg[v] = static_cast<std::uint32_t>(std::unique(first, last) - first);
    }
  });

  std::vector<std::uint64_t> final_offsets(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    final_offsets[v + 1] = final_offsets[v] + deg[v];
  }
  if (final_offsets[n] == offsets[n]) {
    // No duplicate or reversed-duplicate rows: the scatter arrays are final.
    return Graph::from_csr(std::move(offsets), std::move(adjacency));
  }
  std::vector<NodeId> compact(final_offsets[n]);
  for (std::size_t v = 0; v < n; ++v) {
    std::memcpy(compact.data() + final_offsets[v],
                adjacency.data() + offsets[v], deg[v] * sizeof(NodeId));
  }
  return Graph::from_csr(std::move(final_offsets), std::move(compact));
}

/// Serial tokenizing parse with full diagnostics; keeps per-edge line
/// numbers so the post-loop '# nodes' range check reports original lines.
Graph parse_serial(std::string_view text, EdgeListOptions options = {}) {
  std::vector<std::vector<std::pair<NodeId, NodeId>>> parts(1);
  auto& edges = parts[0];
  std::vector<std::size_t> edge_lines;
  std::uint64_t declared_nodes = 0;
  bool has_header = false;
  NodeId max_id = 0;
  std::size_t line_number = 0;

  for_each_line(text.data(), text.data() + text.size(),
                [&](const char* p, const char* le) {
                  ++line_number;
                  const LineOut out = apply_options(parse_line(p, le), options);
                  switch (out.kind) {
                    case LineOut::kSkip:
                      break;
                    case LineOut::kHeader:
                      if (has_header && out.value != declared_nodes) {
                        throw_header_conflict(line_number, declared_nodes);
                      }
                      declared_nodes = out.value;
                      has_header = true;
                      break;
                    case LineOut::kEdge:
                      edges.emplace_back(out.u, out.v);
                      edge_lines.push_back(line_number);
                      max_id = std::max(max_id, std::max(out.u, out.v));
                      break;
                    case LineOut::kError:
                      throw_line_error(line_number, out.code, out.value);
                  }
                  return true;
                });

  if (edges.empty() && declared_nodes == 0) {
    throw std::invalid_argument("edge list: no edges and no node header");
  }
  if (has_header) {
    // A declared node count is a contract, not a floor: an id at or above
    // it is a malformed file (checked post-loop so a header after the edge
    // block still validates every line, with its original line number).
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const NodeId worst = std::max(edges[i].first, edges[i].second);
      if (worst >= declared_nodes) {
        throw std::invalid_argument(
            "edge list line " + std::to_string(edge_lines[i]) + ": node ID " +
            std::to_string(worst) + " exceeds the declared '# nodes " +
            std::to_string(declared_nodes) + "' header");
      }
    }
  }
  const std::size_t n = std::max<std::size_t>(
      declared_nodes, edges.empty() ? 0 : std::size_t{max_id} + 1);
  return assemble_csr(n, parts, 1);
}

struct ChunkResult {
  std::vector<std::pair<NodeId, NodeId>> edges;
  /// "# nodes" sightings as (value, local line), in file order.
  std::vector<std::pair<std::uint64_t, std::size_t>> headers;
  NodeId max_id = 0;
  std::size_t lines = 0;  ///< lines consumed (the error line included)
  ErrCode error = ErrCode::kNone;
  std::size_t error_line = 0;  ///< local (1-based) line of the first error
  std::uint64_t error_value = 0;
};

void parse_chunk(const char* begin, const char* end,
                 const EdgeListOptions& options, ChunkResult& out) {
  for_each_line(begin, end, [&](const char* p, const char* le) {
    ++out.lines;
    const LineOut lo = apply_options(parse_line(p, le), options);
    switch (lo.kind) {
      case LineOut::kSkip:
        break;
      case LineOut::kHeader:
        out.headers.emplace_back(lo.value, out.lines);
        break;
      case LineOut::kEdge:
        out.edges.emplace_back(lo.u, lo.v);
        out.max_id = std::max(out.max_id, std::max(lo.u, lo.v));
        break;
      case LineOut::kError:
        out.error = lo.code;
        out.error_line = out.lines;
        out.error_value = lo.value;
        return false;  // first error wins; later lines are unreachable
    }
    return true;
  });
}

}  // namespace

Graph parse_edge_list(std::string_view text, EdgeListOptions options) {
  return parse_serial(text, options);
}

Graph read_edge_list(std::istream& in) {
  std::string buffer((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  return parse_serial(buffer);
}

Graph parse_edge_list_parallel(std::string_view text, unsigned threads,
                               ParseStats* stats, EdgeListOptions options) {
  const auto t_parse = std::chrono::steady_clock::now();
  threads = resolve_threads(threads);
  const char* begin = text.data();
  const char* end = begin + text.size();

  // Split on newline boundaries: chunk i owns every line whose first byte
  // falls in its range, so chunk results concatenate to the serial parse.
  std::vector<std::pair<const char*, const char*>> spans;
  {
    const char* prev = begin;
    for (unsigned i = 1; i < threads && prev < end; ++i) {
      const char* cut = begin + (text.size() * i) / threads;
      if (cut <= prev) continue;
      const char* nl = static_cast<const char*>(
          std::memchr(cut, '\n', std::size_t(end - cut)));
      const char* next = nl ? nl + 1 : end;
      spans.emplace_back(prev, next);
      prev = next;
    }
    spans.emplace_back(prev, end);
  }

  std::vector<ChunkResult> chunks(spans.size());
  run_workers(threads, spans.size(), [&](std::size_t i) {
    parse_chunk(spans[i].first, spans[i].second, options, chunks[i]);
  });

  // Stitch diagnostics back together in file order: the first error by
  // global line number wins, with header conflicts interleaved at their
  // own lines exactly as the serial parse would encounter them.
  std::uint64_t declared_nodes = 0;
  bool has_header = false;
  NodeId max_id = 0;
  std::size_t base_line = 0;
  std::size_t edge_total = 0;
  for (const ChunkResult& c : chunks) {
    for (const auto& [value, local] : c.headers) {
      if (c.error != ErrCode::kNone && local > c.error_line) break;
      if (has_header && value != declared_nodes) {
        throw_header_conflict(base_line + local, declared_nodes);
      }
      declared_nodes = value;
      has_header = true;
    }
    if (c.error != ErrCode::kNone) {
      throw_line_error(base_line + c.error_line, c.error, c.error_value);
    }
    max_id = std::max(max_id, c.max_id);
    edge_total += c.edges.size();
    base_line += c.lines;
  }

  if (edge_total == 0 && declared_nodes == 0) {
    throw std::invalid_argument("edge list: no edges and no node header");
  }
  if (has_header && edge_total != 0 && std::uint64_t{max_id} >= declared_nodes) {
    // An id violates the declared bound. The serial parse tracks per-edge
    // line numbers and produces the exact historical diagnostic; errors
    // are allowed to be slow.
    return parse_serial(text, options);
  }
  const double parse_ms = ms_since(t_parse);

  const auto t_build = std::chrono::steady_clock::now();
  const std::size_t n = std::max<std::size_t>(
      declared_nodes, edge_total == 0 ? 0 : std::size_t{max_id} + 1);
  std::vector<std::vector<std::pair<NodeId, NodeId>>> parts(chunks.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    parts[i] = std::move(chunks[i].edges);
  }
  Graph g = assemble_csr(n, parts, threads);

  if (stats != nullptr) {
    stats->bytes = text.size();
    stats->lines = base_line;
    stats->edges = edge_total;
    stats->threads = threads;
    stats->parse_ms = parse_ms;
    stats->build_ms = ms_since(t_build);
  }
  return g;
}

Graph read_edge_list_file(const std::string& path, unsigned threads,
                          ParseStats* stats, EdgeListOptions options) {
  const auto t_read = std::chrono::steady_clock::now();
  std::string buffer;
  {
    obs::Span span(obs::Name::kIngestRead, obs::kPidIngest, 0);
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open graph file: " + path);
    resil::failpoint("graph.io.read");
    in.seekg(0, std::ios::end);
    const auto size = in.tellg();
    if (size > 0) {
      buffer.resize(static_cast<std::size_t>(size));
      in.seekg(0, std::ios::beg);
      in.read(buffer.data(), size);
      if (!in) throw std::runtime_error("cannot read graph file: " + path);
    }
  }
  const double read_ms = ms_since(t_read);

  ParseStats local;
  Graph g;
  {
    obs::Span span(obs::Name::kIngestParse, obs::kPidIngest, 0,
                   buffer.size());
    g = parse_edge_list_parallel(buffer, threads, &local, options);
  }
  local.read_ms = read_ms;

  auto& reg = obs::Registry::global();
  if (reg.enabled()) {
    reg.counter("ingest.bytes").add(local.bytes);
    reg.counter("ingest.edges").add(local.edges);
    reg.counter("ingest.lines").add(local.lines);
    const double total_ms = local.read_ms + local.parse_ms + local.build_ms;
    if (total_ms > 0.0) {
      reg.gauge("ingest.edges_per_s")
          .set(double(local.edges) * 1e3 / total_ms);
    }
  }
  if (stats != nullptr) *stats = local;
  return g;
}

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "# nodes " << g.node_count() << "\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      if (u > v) out << v << " " << u << "\n";
    }
  }
}

void write_edge_list_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write graph file: " + path);
  write_edge_list(out, g);
}

}  // namespace drw
