#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "resil/failpoint.hpp"

namespace drw {

Graph read_edge_list(std::istream& in) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<std::size_t> edge_lines;  // for post-loop id-range diagnostics
  std::size_t declared_nodes = 0;
  bool has_header = false;
  NodeId max_id = 0;
  bool any = false;

  // Node ids must fit a NodeId with kInvalidNode reserved as a sentinel.
  constexpr long long kMaxId = static_cast<long long>(kInvalidNode) - 1;

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments; support the "# nodes N" header.
    if (!line.empty() && (line[0] == '#' || line[0] == '%')) {
      std::istringstream header(line.substr(1));
      std::string word;
      header >> word;
      if (word == "nodes") {
        std::size_t n = 0;
        header >> n;
        if (has_header && n != declared_nodes) {
          throw std::invalid_argument(
              "edge list line " + std::to_string(line_number) +
              ": duplicate '# nodes' header conflicts with earlier value " +
              std::to_string(declared_nodes));
        }
        declared_nodes = n;
        has_header = true;
      }
      continue;
    }
    std::istringstream fields(line);
    long long u = -1;
    long long v = -1;
    if (!(fields >> u)) continue;  // blank line
    if (!(fields >> v)) {
      throw std::invalid_argument("edge list line " +
                                  std::to_string(line_number) +
                                  ": expected two node IDs");
    }
    if (u < 0 || v < 0) {
      throw std::invalid_argument("edge list line " +
                                  std::to_string(line_number) +
                                  ": negative node ID");
    }
    if (u > kMaxId || v > kMaxId) {
      throw std::invalid_argument(
          "edge list line " + std::to_string(line_number) + ": node ID " +
          std::to_string(std::max(u, v)) +
          " overflows the 32-bit node id space");
    }
    if (u == v) {
      throw std::invalid_argument("edge list line " +
                                  std::to_string(line_number) +
                                  ": self-loop");
    }
    const auto a = static_cast<NodeId>(u);
    const auto b = static_cast<NodeId>(v);
    edges.emplace_back(a, b);
    edge_lines.push_back(line_number);
    max_id = std::max(max_id, std::max(a, b));
    any = true;
  }
  if (!any && declared_nodes == 0) {
    throw std::invalid_argument("edge list: no edges and no node header");
  }
  if (has_header) {
    // A declared node count is a contract, not a floor: an id at or above
    // it is a malformed file (checked post-loop so a header after the edge
    // block still validates every line, with its original line number).
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const NodeId worst = std::max(edges[i].first, edges[i].second);
      if (worst >= declared_nodes) {
        throw std::invalid_argument(
            "edge list line " + std::to_string(edge_lines[i]) +
            ": node ID " + std::to_string(worst) +
            " exceeds the declared '# nodes " +
            std::to_string(declared_nodes) + "' header");
      }
    }
  }
  const std::size_t n =
      std::max<std::size_t>(declared_nodes, any ? max_id + 1 : 0);
  GraphBuilder builder(n);
  for (const auto& [a, b] : edges) builder.add_edge(a, b);
  return builder.build();
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  resil::failpoint("graph.io.read");
  return read_edge_list(in);
}

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "# nodes " << g.node_count() << "\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      if (u > v) out << v << " " << u << "\n";
    }
  }
}

void write_edge_list_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write graph file: " + path);
  write_edge_list(out, g);
}

}  // namespace drw
