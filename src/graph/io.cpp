#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace drw {

Graph read_edge_list(std::istream& in) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::size_t declared_nodes = 0;
  NodeId max_id = 0;
  bool any = false;

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments; support the "# nodes N" header.
    if (!line.empty() && (line[0] == '#' || line[0] == '%')) {
      std::istringstream header(line.substr(1));
      std::string word;
      header >> word;
      if (word == "nodes") {
        header >> declared_nodes;
      }
      continue;
    }
    std::istringstream fields(line);
    long long u = -1;
    long long v = -1;
    if (!(fields >> u)) continue;  // blank line
    if (!(fields >> v)) {
      throw std::invalid_argument("edge list line " +
                                  std::to_string(line_number) +
                                  ": expected two node IDs");
    }
    if (u < 0 || v < 0) {
      throw std::invalid_argument("edge list line " +
                                  std::to_string(line_number) +
                                  ": negative node ID");
    }
    if (u == v) {
      throw std::invalid_argument("edge list line " +
                                  std::to_string(line_number) +
                                  ": self-loop");
    }
    const auto a = static_cast<NodeId>(u);
    const auto b = static_cast<NodeId>(v);
    edges.emplace_back(a, b);
    max_id = std::max(max_id, std::max(a, b));
    any = true;
  }
  if (!any && declared_nodes == 0) {
    throw std::invalid_argument("edge list: no edges and no node header");
  }
  const std::size_t n =
      std::max<std::size_t>(declared_nodes, any ? max_id + 1 : 0);
  GraphBuilder builder(n);
  for (const auto& [a, b] : edges) builder.add_edge(a, b);
  return builder.build();
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  return read_edge_list(in);
}

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "# nodes " << g.node_count() << "\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      if (u > v) out << v << " " << u << "\n";
    }
  }
}

void write_edge_list_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write graph file: " + path);
  write_edge_list(out, g);
}

}  // namespace drw
