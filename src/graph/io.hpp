// Plain-text edge-list I/O so the library and CLI can run on user graphs.
//
// Format: one "u v" pair per line (0-based node IDs, whitespace separated);
// lines starting with '#' or '%' are comments; blank lines ignored. The node
// count is max ID + 1 unless a "# nodes N" header raises it. Duplicate and
// reversed edges are coalesced (the model's graphs are simple/undirected).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace drw {

/// Parses an edge list from a stream. Throws std::invalid_argument on
/// malformed lines, self-loops, or an empty graph.
Graph read_edge_list(std::istream& in);

/// Reads an edge-list file. Throws std::runtime_error if unreadable.
Graph read_edge_list_file(const std::string& path);

/// Writes g as an edge list (with a "# nodes N" header, so isolated trailing
/// nodes round-trip).
void write_edge_list(std::ostream& out, const Graph& g);
void write_edge_list_file(const std::string& path, const Graph& g);

}  // namespace drw
