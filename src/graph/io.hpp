// Plain-text edge-list I/O so the library and CLI can run on user graphs.
//
// Format: one "u v" pair per line (0-based node IDs, whitespace separated);
// lines starting with '#' or '%' are comments; blank lines ignored. The node
// count is max ID + 1 unless a "# nodes N" header raises it. Duplicate and
// reversed edges are coalesced (the model's graphs are simple/undirected).
//
// Two ingestion paths share one in-place tokenizer (no istringstream, no
// per-line allocation):
//
//   * read_edge_list / parse_edge_list -- serial, streaming-friendly, with
//     the full per-line diagnostics (line-numbered errors for malformed
//     rows, self-loops, id-space overflow, '# nodes' violations);
//   * read_edge_list_file / parse_edge_list_parallel -- the bulk path for
//     real datasets: the file is read once into memory, split on newline
//     boundaries into per-worker chunks, tokenized in place, and assembled
//     into CSR with a counting scatter + per-node sort/dedup instead of a
//     global comparison sort. Results and error messages are identical to
//     the serial path at every thread count (errors fall back to a serial
//     re-parse where needed, so diagnostics keep their exact line numbers).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "graph/graph.hpp"

namespace drw {

/// Instrumentation from a bulk parse (also mirrored into the obs registry
/// as ingest.* counters when it is enabled).
struct ParseStats {
  std::uint64_t bytes = 0;  ///< text bytes consumed
  std::uint64_t lines = 0;  ///< physical lines (data, comments, blanks)
  std::uint64_t edges = 0;  ///< edge rows parsed (before coalescing)
  unsigned threads = 1;     ///< workers the parse actually used
  double read_ms = 0.0;     ///< file -> memory (0 for in-memory parses)
  double parse_ms = 0.0;    ///< tokenize + edge extraction
  double build_ms = 0.0;    ///< CSR assembly (scatter + sort + dedup)
};

/// Knobs for the edge-list parsers (CLI: --no-header).
struct EdgeListOptions {
  /// Treat `# nodes N` header lines as plain comments: no declared-count
  /// contract (ids beyond N stop being errors), no isolated trailing
  /// nodes, no duplicate-header conflicts -- the node count is purely
  /// max id + 1. For datasets whose headers are wrong or use a foreign
  /// convention.
  bool no_header = false;
};

/// Parses an edge list from a stream. Throws std::invalid_argument on
/// malformed lines, self-loops, or an empty graph.
Graph read_edge_list(std::istream& in);

/// Serial in-place tokenizer over an in-memory buffer; the semantics (and
/// exact diagnostics) of read_edge_list.
Graph parse_edge_list(std::string_view text, EdgeListOptions options = {});

/// Bulk parallel parse of an in-memory buffer. `threads` 0 = auto
/// (DRW_THREADS env, else hardware). Identical result and diagnostics to
/// parse_edge_list at every thread count.
Graph parse_edge_list_parallel(std::string_view text, unsigned threads = 0,
                               ParseStats* stats = nullptr,
                               EdgeListOptions options = {});

/// Reads an edge-list file through the bulk parallel parser. Throws
/// std::runtime_error if unreadable, std::invalid_argument on content
/// errors (same messages as read_edge_list).
Graph read_edge_list_file(const std::string& path, unsigned threads = 0,
                          ParseStats* stats = nullptr,
                          EdgeListOptions options = {});

/// Writes g as an edge list (with a "# nodes N" header, so isolated trailing
/// nodes round-trip).
void write_edge_list(std::ostream& out, const Graph& g);
void write_edge_list_file(const std::string& path, const Graph& g);

}  // namespace drw
