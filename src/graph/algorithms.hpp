// Centralized graph algorithms used for validation and instrumentation:
// BFS distances, exact/approximate diameter, connectivity. These run outside
// the CONGEST model (the simulator has its own distributed BFS protocol).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace drw {

/// Distance in hops from `source` to every node; kUnreachable if unreachable.
inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source);

/// BFS parent array (parent[source] == source; kInvalidNode if unreachable).
std::vector<NodeId> bfs_parents(const Graph& g, NodeId source);

/// Component label per node, labels 0..k-1 in discovery order.
std::vector<std::uint32_t> connected_components(const Graph& g);

bool is_connected(const Graph& g);

/// Exact diameter via BFS from every node; O(n(n+m)). Throws if disconnected.
std::uint32_t exact_diameter(const Graph& g);

/// Double-sweep lower bound on the diameter (exact on trees); O(n+m).
std::uint32_t double_sweep_diameter_estimate(const Graph& g, NodeId start = 0);

/// Eccentricity of `v` (max BFS distance). Throws if disconnected.
std::uint32_t eccentricity(const Graph& g, NodeId v);

}  // namespace drw
