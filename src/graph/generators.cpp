#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/algorithms.hpp"

namespace drw::gen {

namespace {

/// Joins the connected components of the edge set described by `builder`'s
/// graph by adding bridge edges between representatives of consecutive
/// components (chosen by `pick` so randomized families stay randomized).
Graph connect_components(GraphBuilder builder, Rng& rng) {
  Graph g = builder.build();
  auto comp = connected_components(g);
  std::uint32_t num_components =
      comp.empty() ? 0 : *std::max_element(comp.begin(), comp.end()) + 1;
  while (num_components > 1) {
    // Pick a random node from component 0 and from some other component.
    std::vector<NodeId> in_zero;
    std::vector<NodeId> outside;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      (comp[v] == 0 ? in_zero : outside).push_back(v);
    }
    const NodeId a = in_zero[rng.next_below(in_zero.size())];
    const NodeId b = outside[rng.next_below(outside.size())];
    builder.add_edge(a, b);
    g = builder.build();
    comp = connected_components(g);
    num_components = *std::max_element(comp.begin(), comp.end()) + 1;
  }
  return g;
}

}  // namespace

Graph path(std::size_t n) {
  if (n == 0) throw std::invalid_argument("path: n == 0");
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return b.build();
}

Graph cycle(std::size_t n) {
  if (n < 3) throw std::invalid_argument("cycle: n < 3");
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  b.add_edge(static_cast<NodeId>(n - 1), 0);
  return b.build();
}

Graph grid(std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("grid: empty");
  GraphBuilder b(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph torus(std::size_t rows, std::size_t cols) {
  if (rows < 3 || cols < 3) throw std::invalid_argument("torus: dims < 3");
  GraphBuilder b(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      b.add_edge(id(r, c), id(r, (c + 1) % cols));
      b.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return b.build();
}

Graph hypercube(std::size_t dim) {
  if (dim == 0 || dim > 20) throw std::invalid_argument("hypercube: dim");
  const std::size_t n = std::size_t{1} << dim;
  GraphBuilder b(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t bit = 0; bit < dim; ++bit) {
      const std::size_t u = v ^ (std::size_t{1} << bit);
      if (u > v) b.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(u));
    }
  }
  return b.build();
}

Graph complete(std::size_t n) {
  if (n < 2) throw std::invalid_argument("complete: n < 2");
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) b.add_edge(i, j);
  }
  return b.build();
}

Graph star(std::size_t n) {
  if (n < 2) throw std::invalid_argument("star: n < 2");
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) b.add_edge(0, i);
  return b.build();
}

Graph binary_tree(std::size_t n) {
  if (n == 0) throw std::invalid_argument("binary_tree: n == 0");
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) b.add_edge(i, (i - 1) / 2);
  return b.build();
}

Graph caterpillar(std::size_t spine, std::size_t legs) {
  if (spine == 0) throw std::invalid_argument("caterpillar: spine == 0");
  const std::size_t n = spine * (1 + legs);
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < spine; ++i) b.add_edge(i, i + 1);
  NodeId next = static_cast<NodeId>(spine);
  for (NodeId s = 0; s < spine; ++s) {
    for (std::size_t leg = 0; leg < legs; ++leg) b.add_edge(s, next++);
  }
  return b.build();
}

Graph lollipop(std::size_t clique_n, std::size_t path_n) {
  if (clique_n < 2) throw std::invalid_argument("lollipop: clique < 2");
  const std::size_t n = clique_n + path_n;
  GraphBuilder b(n);
  for (NodeId i = 0; i < clique_n; ++i) {
    for (NodeId j = i + 1; j < clique_n; ++j) b.add_edge(i, j);
  }
  NodeId prev = static_cast<NodeId>(clique_n - 1);
  for (std::size_t i = 0; i < path_n; ++i) {
    const auto cur = static_cast<NodeId>(clique_n + i);
    b.add_edge(prev, cur);
    prev = cur;
  }
  return b.build();
}

Graph barbell(std::size_t clique_n, std::size_t path_n) {
  if (clique_n < 2) throw std::invalid_argument("barbell: clique < 2");
  const std::size_t n = 2 * clique_n + path_n;
  GraphBuilder b(n);
  auto add_clique = [&](NodeId base) {
    for (NodeId i = 0; i < clique_n; ++i) {
      for (NodeId j = i + 1; j < clique_n; ++j) {
        b.add_edge(base + i, base + j);
      }
    }
  };
  add_clique(0);
  add_clique(static_cast<NodeId>(clique_n + path_n));
  NodeId prev = static_cast<NodeId>(clique_n - 1);
  for (std::size_t i = 0; i < path_n; ++i) {
    const auto cur = static_cast<NodeId>(clique_n + i);
    b.add_edge(prev, cur);
    prev = cur;
  }
  b.add_edge(prev, static_cast<NodeId>(clique_n + path_n));
  return b.build();
}

Graph erdos_renyi_connected(std::size_t n, double p, Rng& rng) {
  if (n < 2) throw std::invalid_argument("erdos_renyi: n < 2");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("erdos_renyi: p");
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.next_bool(p)) b.add_edge(i, j);
    }
  }
  return connect_components(std::move(b), rng);
}

Graph random_regular(std::size_t n, std::uint32_t d, Rng& rng) {
  if (d == 0 || d >= n) throw std::invalid_argument("random_regular: d");
  if ((n * d) % 2 != 0) {
    throw std::invalid_argument("random_regular: n*d must be even");
  }
  // Configuration model with repair: pair up n*d stubs uniformly, keep the
  // valid pairs, and re-shuffle the conflicting stubs. If the leftover pool
  // stops shrinking, break open a random accepted edge to unstick it.
  std::vector<NodeId> pool;
  pool.reserve(n * d);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t i = 0; i < d; ++i) pool.push_back(v);
  }
  std::set<std::pair<NodeId, NodeId>> accepted;
  for (int attempt = 0; attempt < 100000 && !pool.empty(); ++attempt) {
    rng.shuffle(pool);
    std::vector<NodeId> leftover;
    for (std::size_t i = 0; i + 1 < pool.size(); i += 2) {
      NodeId u = pool[i];
      NodeId v = pool[i + 1];
      if (u > v) std::swap(u, v);
      if (u == v || !accepted.emplace(u, v).second) {
        leftover.push_back(pool[i]);
        leftover.push_back(pool[i + 1]);
      }
    }
    if (pool.size() % 2 != 0) leftover.push_back(pool.back());
    const bool stuck = leftover.size() >= pool.size();
    pool = std::move(leftover);
    if (stuck && !accepted.empty() && !pool.empty()) {
      // Release a random accepted edge back into the pool.
      auto it = accepted.begin();
      std::advance(it, static_cast<long>(rng.next_below(accepted.size())));
      pool.push_back(it->first);
      pool.push_back(it->second);
      accepted.erase(it);
    }
  }
  if (!pool.empty()) {
    throw std::runtime_error("random_regular: pairing failed repeatedly");
  }
  GraphBuilder b(n);
  for (const auto& [u, v] : accepted) b.add_edge(u, v);
  return connect_components(std::move(b), rng);
}

Graph power_law(std::size_t n, std::uint32_t m, Rng& rng) {
  if (m < 1) throw std::invalid_argument("power_law: m < 1");
  if (n < m + 1) throw std::invalid_argument("power_law: n < m + 1");
  GraphBuilder b(n);
  // Seed with a small clique so the first arrivals have m targets, then
  // attach each new node to m distinct existing nodes sampled by degree
  // (the classic repeated-endpoint list: every edge endpoint appears once,
  // so uniform draws from it are degree-proportional).
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * m * n);
  for (NodeId i = 0; i <= m; ++i) {
    for (NodeId j = i + 1; j <= m; ++j) {
      b.add_edge(i, j);
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  }
  std::vector<NodeId> chosen;
  for (NodeId v = m + 1; v < n; ++v) {
    chosen.clear();
    while (chosen.size() < m) {
      const NodeId u = endpoints[rng.next_below(endpoints.size())];
      if (std::find(chosen.begin(), chosen.end(), u) == chosen.end()) {
        chosen.push_back(u);
      }
    }
    for (const NodeId u : chosen) {
      b.add_edge(v, u);
      endpoints.push_back(v);
      endpoints.push_back(u);
    }
  }
  return b.build();
}

Graph random_geometric(std::size_t n, double radius, Rng& rng) {
  if (n < 2) throw std::invalid_argument("random_geometric: n < 2");
  if (radius <= 0.0) throw std::invalid_argument("random_geometric: radius");
  std::vector<std::pair<double, double>> pts(n);
  for (auto& [x, y] : pts) {
    x = rng.next_double();
    y = rng.next_double();
  }
  const double r2 = radius * radius;
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      const double dx = pts[i].first - pts[j].first;
      const double dy = pts[i].second - pts[j].second;
      if (dx * dx + dy * dy <= r2) b.add_edge(i, j);
    }
  }
  // Join components by their geometrically nearest cross pair, preserving
  // the spatial character of the graph.
  Graph g = b.build();
  auto comp = connected_components(g);
  auto num_components = comp.empty()
                            ? std::uint32_t{0}
                            : *std::max_element(comp.begin(), comp.end()) + 1;
  while (num_components > 1) {
    double best = 1e300;
    NodeId best_a = 0;
    NodeId best_b = 0;
    for (NodeId i = 0; i < n; ++i) {
      if (comp[i] != 0) continue;
      for (NodeId j = 0; j < n; ++j) {
        if (comp[j] == 0) continue;
        const double dx = pts[i].first - pts[j].first;
        const double dy = pts[i].second - pts[j].second;
        const double d2 = dx * dx + dy * dy;
        if (d2 < best) {
          best = d2;
          best_a = i;
          best_b = j;
        }
      }
    }
    b.add_edge(best_a, best_b);
    g = b.build();
    comp = connected_components(g);
    num_components = *std::max_element(comp.begin(), comp.end()) + 1;
  }
  return g;
}

Graph expander_chain(std::size_t segments, std::size_t segment_n,
                     std::uint32_t d, Rng& rng) {
  if (segments == 0) throw std::invalid_argument("expander_chain: segments");
  const std::size_t n = segments * segment_n;
  GraphBuilder b(n);
  for (std::size_t s = 0; s < segments; ++s) {
    Graph part = random_regular(segment_n, d, rng);
    const auto base = static_cast<NodeId>(s * segment_n);
    for (NodeId v = 0; v < part.node_count(); ++v) {
      for (NodeId u : part.neighbors(v)) {
        if (u > v) b.add_edge(base + v, base + u);
      }
    }
    if (s + 1 < segments) {
      // Single bridge between consecutive segments keeps diameter additive.
      const auto a = base + static_cast<NodeId>(rng.next_below(segment_n));
      const auto next_base = static_cast<NodeId>((s + 1) * segment_n);
      const auto c =
          next_base + static_cast<NodeId>(rng.next_below(segment_n));
      b.add_edge(a, c);
    }
  }
  return b.build();
}

}  // namespace drw::gen
